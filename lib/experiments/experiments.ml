(** Drivers for every figure and table of the paper's evaluation.

    Each driver returns plain data; the bench harness formats it.  See
    DESIGN.md for the per-experiment index. *)

(* --- shared plumbing --------------------------------------------------- *)

type app_ctx = {
  app : App.t;
  prog : Prog.t;
  clean : Machine.result;
  trace : Trace.t;
  access : Access.t;
  instances : Region.instance list;
}

let ctx_cache : (string, app_ctx) Hashtbl.t = Hashtbl.create 16

(** Fault-free traced context of an app, cached per app name. *)
let context (app : App.t) : app_ctx =
  match Hashtbl.find_opt ctx_cache app.App.name with
  | Some c -> c
  | None ->
      let clean, trace = App.trace app in
      let c =
        {
          app;
          prog = App.program app;
          clean;
          trace;
          access = Access.build trace;
          instances = Region.instances trace;
        }
      in
      Hashtbl.replace ctx_cache app.App.name c;
      c

let region_name (c : app_ctx) rid = c.prog.Prog.region_table.(rid).rname

(* --- Figure 5: per-code-region success rates --------------------------- *)

type region_rates_row = {
  rr_app : string;
  rr_region : string;
  rr_internal : Campaign.counts;
  rr_input : Campaign.counts;
}

(** Fault injection into the first instance (iteration 0) of every code
    region: internal locations (instruction destinations) and input
    locations (DDDG input memory words at region entry). *)
let fig5 ?(effort = Effort.default) (app : App.t) : region_rates_row list =
  let c = context app in
  let verify = App.verify app in
  let nregions = Array.length c.prog.Prog.region_table in
  List.init nregions (fun rid ->
      match Region.find_instance c.trace ~rid ~number:0 with
      | None ->
          {
            rr_app = app.App.name;
            rr_region = region_name c rid;
            rr_internal = Campaign.zero_counts;
            rr_input = Campaign.zero_counts;
          }
      | Some inst ->
          let internal = Campaign.internal_target c.prog c.trace inst in
          let input = Campaign.input_target c.prog c.trace c.access inst in
          let run t =
            Campaign.run c.prog ~verify
              ~clean_instructions:c.clean.Machine.instructions
              ~cfg:effort.Effort.campaign ~exec:(Effort.exec effort) t
          in
          {
            rr_app = app.App.name;
            rr_region = region_name c rid;
            rr_internal = run internal;
            rr_input = run input;
          })

(* --- Figure 6: per-iteration success rates ----------------------------- *)

type iteration_rates_row = {
  ir_app : string;
  ir_iteration : int;
  ir_internal : Campaign.counts;
  ir_input : Campaign.counts;
}

(** The main loop treated as a single code region; one campaign per
    iteration (inputs = memory words the iteration reads before
    writing). *)
let fig6 ?(effort = Effort.default) (app : App.t) : iteration_rates_row list =
  let c = context app in
  let verify = App.verify app in
  let spans = Region.iteration_spans c.trace in
  List.map
    (fun (iter, (lo, hi)) ->
      let internal =
        Campaign.Internal { sites = Campaign.writing_sites c.prog c.trace ~lo ~hi }
      in
      let g = Dddg.build c.trace c.access ~lo ~hi in
      let input =
        Campaign.Input
          {
            entry_seq = (Trace.get c.trace lo).Trace.seq;
            sites =
              Dddg.input_mem_addrs g
              |> List.map (fun addr ->
                     let bits =
                       match Prog.type_of_addr c.prog addr with
                       | Some Ty.I64 -> 32
                       | Some Ty.F64 | None -> 64
                     in
                     { Campaign.addr; bits })
              |> Array.of_list;
          }
      in
      let run t =
        Campaign.run c.prog ~verify
          ~clean_instructions:c.clean.Machine.instructions
          ~cfg:effort.Effort.campaign ~exec:(Effort.exec effort) t
      in
      {
        ir_app = app.App.name;
        ir_iteration = iter;
        ir_internal = run internal;
        ir_input = run input;
      })
    spans

(* --- Figure 7: the ACL time series -------------------------------------- *)

type acl_series = {
  as_app : string;
  as_fault : Machine.fault;
  as_outcome : Machine.outcome;
  as_result : Acl.result;
}

(** Inject a fault into iteration [target_iter] of the app's main loop
    (counting from the end when negative, so [-3] is the paper's "last
    third iteration") and compute the ACL series.  Seeds are tried in
    order until an injection neither crashes immediately nor vanishes
    without propagating. *)
let fig7 ?(seed = 7) ?(target_iter = -3) ?(min_peak = 3) (app : App.t) :
    acl_series =
  let c = context app in
  let spans = Region.iteration_spans c.trace in
  let niters = List.length spans in
  let iter = if target_iter >= 0 then target_iter else niters + target_iter in
  let lo, hi = List.assoc iter spans in
  let sites = Campaign.writing_sites c.prog c.trace ~lo ~hi in
  let budget = 10 * c.clean.Machine.instructions in
  let rec attempt k rng =
    let fault = Campaign.sample_fault rng (Campaign.Internal { sites }) in
    let result, faulty = App.trace_with_fault app fault ~budget in
    let acl = Acl.analyze ~fault ~clean:c.trace ~faulty () in
    if
      (acl.Acl.peak >= min_peak && result.Machine.outcome = Machine.Finished)
      || k > 50
    then
      { as_app = app.App.name; as_fault = fault; as_outcome = result.Machine.outcome;
        as_result = acl }
    else attempt (k + 1) rng
  in
  attempt 0 (Rng.create ~seed)

(* --- Table I: region inventory and patterns found ----------------------- *)

type table1_row = {
  t1_app : string;
  t1_region : string;
  t1_lines : int * int;
  t1_instr_per_iter : int;
  t1_counts : (Pattern.t * int) list;  (** observed instances, merged *)
}

(** Mine patterns per region: several internal injections per region,
    each analyzed with the ACL machinery; pattern observations are
    merged across injections. *)
let table1 ?(effort = Effort.default) ?(seed = 11) (app : App.t) :
    table1_row list =
  let c = context app in
  let budget = 10 * c.clean.Machine.instructions in
  let rng = Rng.create ~seed in
  let nregions = Array.length c.prog.Prog.region_table in
  List.init nregions (fun rid ->
      let info = c.prog.Prog.region_table.(rid) in
      match Region.find_instance c.trace ~rid ~number:0 with
      | None ->
          {
            t1_app = app.App.name;
            t1_region = info.rname;
            t1_lines = (info.line_lo, info.line_hi);
            t1_instr_per_iter = 0;
            t1_counts = [];
          }
      | Some inst ->
          (* the paper mines patterns from injections into both the
             internal and the input locations of the region instance *)
          let internal = Campaign.internal_target c.prog c.trace inst in
          let input = Campaign.input_target c.prog c.trace c.access inst in
          let n_input = effort.Effort.acl_injections / 2 in
          let n_internal = effort.Effort.acl_injections - n_input in
          let observe target n =
            List.init n (fun _ ->
                let fault = Campaign.sample_fault rng target in
                let _, faulty = App.trace_with_fault app fault ~budget in
                let acl = Acl.analyze ~fault ~clean:c.trace ~faulty () in
                Dynamic_detect.of_acl acl)
          in
          let observations =
            observe internal n_internal
            @ (if Campaign.target_population input > 0 then observe input n_input
               else [])
          in
          let merged = Dynamic_detect.merge observations in
          let counts =
            match
              List.find_opt (fun (rp : Dynamic_detect.region_patterns) ->
                  rp.rid = rid)
                merged
            with
            | Some rp -> rp.counts
            | None -> []
          in
          {
            t1_app = app.App.name;
            t1_region = info.rname;
            t1_lines = (info.line_lo, info.line_hi);
            t1_instr_per_iter = Region.size inst;
            t1_counts = counts;
          })

(* --- Table II: repeated additions shrink the error magnitude ------------ *)

type table2_row = {
  t2_iteration : int;
  t2_correct : float;
  t2_faulty : float;
  t2_magnitude : float;
}

(** Flip bit [bit] of MG's u[3][3][3] (the u[10][10][10] analog) at the
    first V-cycle and sample the error magnitude at each iteration
    boundary. *)
let table2 ?(bit = 40) ?(element = [ 3; 3; 3 ]) () : table2_row list =
  let app = Mg.app in
  let c = context app in
  let addr = Prog.addr_of_element c.prog "u0" element in
  (* inject right after the first finest-level smoothing writes u0:
     entry of the first mg_d instance *)
  let rid_d = (Prog.region_by_name c.prog "mg_d").Prog.rid in
  let inst =
    match Region.find_instance c.trace ~rid:rid_d ~number:0 with
    | Some i -> i
    | None -> invalid_arg "table2: MG has no mg_d instance"
  in
  let seq = (Trace.get c.trace inst.hi).Trace.seq in
  let fault = Machine.Flip_mem { seq; addr; bit } in
  let budget = 10 * c.clean.Machine.instructions in
  let _, faulty = App.trace_with_fault app fault ~budget in
  Tolerance.magnitude_by_iteration ~fault ~clean:c.trace ~faulty ~addr ()
  |> List.map (fun (it, cv, fv, m) ->
         {
           t2_iteration = it;
           t2_correct = Value.to_float cv;
           t2_faulty = Value.to_float fv;
           t2_magnitude = m;
         })

(* --- Table III: hardened CG ---------------------------------------------- *)

type table3_row = {
  t3_variant : string;
  t3_counts : Campaign.counts;       (** whole-program injections *)
  t3_sprnvc : Campaign.counts;       (** injections restricted to sprnvc *)
  t3_time_min : float;
  t3_time_max : float;
  t3_time_avg : float;
}

(** Whole-program campaigns + wall-clock timing for the CG variants of
    Use Case 1.  The paper uses a tighter statistical design here (99%
    / 1%). *)
let table3 ?(effort = Effort.default) () : table3_row list =
  List.map
    (fun (app : App.t) ->
      let c = context app in
      let verify = App.verify app in
      let target = Campaign.whole_program_target c.prog c.trace in
      let cfg =
        {
          effort.Effort.campaign with
          confidence = 0.99;
          margin = 0.01;
          (* the resilience deltas here are a few percent, so spend three
             times the usual trials on each variant *)
          max_trials =
            Option.map (fun m -> 3 * m) effort.Effort.campaign.Campaign.max_trials;
        }
      in
      let counts =
        Campaign.run c.prog ~verify
          ~clean_instructions:c.clean.Machine.instructions ~cfg
          ~exec:(Effort.exec effort) target
      in
      (* the hardened code is a small fraction of CG's execution, so
         the whole-program rate moves little; the targeted campaign —
         soft errors landing in the global v/iv arrays while sprnvc
         runs, exactly the corruption the Figure 12(b) transformation
         overwrites — shows the effect directly *)
      let sprnvc =
        Campaign.run c.prog ~verify
          ~clean_instructions:c.clean.Machine.instructions ~cfg
          ~exec:(Effort.exec effort)
          (Campaign.memory_during_function_target c.prog c.trace
             ~fname:"sprnvc" ~vars:[ "v"; "iv" ])
      in
      let times =
        Array.init effort.Effort.timing_runs (fun _ ->
            let t0 = Unix.gettimeofday () in
            ignore (Machine.run_plain c.prog);
            Unix.gettimeofday () -. t0)
      in
      let mn = Array.fold_left Float.min times.(0) times in
      let mx = Array.fold_left Float.max times.(0) times in
      {
        t3_variant = app.App.name;
        t3_counts = counts;
        t3_sprnvc = sprnvc;
        t3_time_min = mn;
        t3_time_max = mx;
        t3_time_avg = Stats.mean times;
      })
    Registry.cg_variants

(* --- Table IV: predicting application resilience ------------------------- *)

type table4_row = {
  t4_app : string;
  t4_rates : Rates.t;
  t4_measured : float;
  t4_predicted : float;  (** leave-one-out prediction *)
  t4_error : float;      (** relative prediction error *)
  t4_weighted_predicted : float;
      (** LOO prediction from masking-probability-weighted rates (the
          paper's future-work refinement) *)
  t4_weighted_error : float;
}

type table4 = {
  rows : table4_row list;
  r_square : float;           (** of the full fit *)
  std_coefficients : float array;  (** standardized, full fit *)
  weighted_loo_error : float;  (** mean LOO error with weighted features *)
  unweighted_loo_error : float;
}

let table4 ?(effort = Effort.default) ?(apps = Registry.all) () : table4 =
  let measured =
    List.map
      (fun (app : App.t) ->
        let c = context app in
        let verify = App.verify app in
        let rates = Rates.compute c.trace c.access in
        let wrates = Weighted_rates.compute c.trace c.access in
        let target = Campaign.whole_program_target c.prog c.trace in
        let counts =
          Campaign.run c.prog ~verify
            ~clean_instructions:c.clean.Machine.instructions
            ~cfg:effort.Effort.campaign ~exec:(Effort.exec effort) target
        in
        (app.App.name, rates, wrates, Campaign.success_rate counts))
      apps
  in
  let x =
    Array.of_list (List.map (fun (_, r, _, _) -> Rates.to_vector r) measured)
  in
  let xw =
    Array.of_list
      (List.map (fun (_, _, w, _) -> Weighted_rates.to_vector w) measured)
  in
  let y = Array.of_list (List.map (fun (_, _, _, sr) -> sr) measured) in
  (* the paper's Bayesian linear model implies a prior strength; choose
     it by leave-one-out error over a grid (ten samples cannot support
     six free coefficients without it) *)
  let lambda =
    let candidates = [ 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1 ] in
    let loo_err l =
      let p = Regression.leave_one_out ~lambda:l x y in
      let s = ref 0.0 in
      Array.iteri
        (fun i yi ->
          s := !s +. Regression.relative_error ~measured:yi ~predicted:p.(i))
        y;
      !s
    in
    List.fold_left
      (fun (best, best_err) l ->
        let e = loo_err l in
        if e < best_err then (l, e) else (best, best_err))
      (List.hd candidates, loo_err (List.hd candidates))
      (List.tl candidates)
    |> fst
  in
  (* experiment 1 of the paper: how well the model can fit all ten
     programs (a near-OLS fit); experiment 2: how well it predicts an
     unseen program (the regularized leave-one-out model) *)
  let full_ols = Regression.fit ~lambda:1e-7 x y in
  let full = Regression.fit ~lambda x y in
  let loo = Regression.leave_one_out ~lambda x y in
  let loo_w = Regression.leave_one_out ~lambda xw y in
  let rows =
    List.mapi
      (fun i (name, rates, _, sr) ->
        {
          t4_app = name;
          t4_rates = rates;
          t4_measured = sr;
          t4_predicted = loo.(i);
          t4_error = Regression.relative_error ~measured:sr ~predicted:loo.(i);
          t4_weighted_predicted = loo_w.(i);
          t4_weighted_error =
            Regression.relative_error ~measured:sr ~predicted:loo_w.(i);
        })
      measured
  in
  let mean_err errs =
    List.fold_left ( +. ) 0.0 errs /. Float.of_int (max 1 (List.length errs))
  in
  {
    rows;
    r_square = Regression.r_square full_ols x y;
    std_coefficients = Regression.standardized_coefficients full x y;
    unweighted_loo_error = mean_err (List.map (fun r -> r.t4_error) rows);
    weighted_loo_error = mean_err (List.map (fun r -> r.t4_weighted_error) rows);
  }

(* --- Figure 4: parallel tracing overhead --------------------------------- *)

type fig4_row = {
  f4_app : string;
  f4_ranks : int;
  f4_untraced_s : float;
  f4_traced_s : float;
  f4_overhead : float;  (** traced / untraced - 1 *)
}

(** Per-process tracing cost at scale: run the app on [ranks] simulated
    MPI ranks (one VM per rank on a domain), with and without the
    tracer, and compare wall time — the Figure 4 experiment.  The apps
    are rank-replicated (computation-only, like the paper's focus on
    the single faulty process); the communication path itself is
    exercised by the [Demo] programs. *)
let fig4 ?(effort = Effort.default) ?(apps = Registry.analyzed) () :
    fig4_row list =
  List.map
    (fun (app : App.t) ->
      let prog = App.program app in
      let ranks = effort.Effort.fig4_ranks in
      (* the harness is rank-replicated computation (no messages), so
         waves of 4 bound peak memory: at most 4 live traces *)
      let untraced = Runner.run ~traced:false ~max_live:4 ~size:ranks prog in
      let traced = Runner.run ~traced:true ~max_live:4 ~size:ranks prog in
      {
        f4_app = app.App.name;
        f4_ranks = ranks;
        f4_untraced_s = untraced.Runner.wall_seconds;
        f4_traced_s = traced.Runner.wall_seconds;
        f4_overhead =
          (traced.Runner.wall_seconds /. untraced.Runner.wall_seconds) -. 1.0;
      })
    apps
