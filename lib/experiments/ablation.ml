(** Ablations of the framework's own design choices (documented in
    DESIGN.md), so that each substitution's effect on the results is
    measurable rather than asserted:

    {ol
    {- {b typed fault widths}: the paper's subjects store integers in
       32 bits; flipping a uniform 64-bit range instead inflates wild
       values and crashes;}
    {- {b heap slack}: C programs silently corrupt nearby heap memory
       under moderate index corruption; a tight address space converts
       those into traps;}
    {- {b liveness-aware ACL counting}: counting all corrupted
       locations (plain taint) instead of the alive ones overstates the
       error footprint — the paper's reason for tracking liveness.}} *)

type campaign_pair = {
  label : string;
  variant_a : string;
  counts_a : Campaign.counts;
  variant_b : string;
  counts_b : Campaign.counts;
}

(* strip the 32-bit annotations off a target *)
let untyped = function
  | Campaign.Internal { sites } ->
      Campaign.Internal
        { sites = Array.map (fun (s : Campaign.site) -> { s with bits = 64 }) sites }
  | Campaign.Input { entry_seq; sites } ->
      Campaign.Input
        {
          entry_seq;
          sites =
            Array.map
              (fun (s : Campaign.input_site) -> { s with Campaign.bits = 64 })
              sites;
        }
  | Campaign.Mem_over_time { seqs; sites } ->
      Campaign.Mem_over_time
        {
          seqs;
          sites =
            Array.map
              (fun (s : Campaign.input_site) -> { s with Campaign.bits = 64 })
              sites;
        }
  (* structural surfaces carry no per-site width annotations *)
  | (Campaign.Cache_struct _ | Campaign.Istore_struct _) as t -> t

(** Ablation 1: IS under typed vs uniform-64-bit flips. *)
let typed_bits ?(trials = 150) () : campaign_pair =
  let app = Is.app in
  let clean, trace = App.trace app in
  let prog = App.program app in
  let target = Campaign.whole_program_target prog trace in
  let cfg = { Campaign.default_config with max_trials = Some trials } in
  let run t =
    Campaign.run prog ~verify:(App.verify app)
      ~clean_instructions:clean.Machine.instructions ~cfg t
  in
  {
    label = "fault width model (IS, whole program)";
    variant_a = "typed (ints=32b)";
    counts_a = run target;
    variant_b = "uniform 64b";
    counts_b = run (untyped target);
  }

(** Ablation 2: IS with and without heap slack. *)
let heap_slack ?(trials = 150) () : campaign_pair =
  let ref_value = App.reference_value Is.app in
  let run_with slack =
    let prog = Compile.compile ~heap_slack:slack (Is.make ~ref_value:(Some ref_value)) in
    let t = Trace.create () in
    let clean = Machine.run prog { Machine.default_config with trace = Some t } in
    let target = Campaign.whole_program_target prog t in
    Campaign.run prog
      ~verify:(fun r -> App.verified r.Machine.output)
      ~clean_instructions:clean.Machine.instructions
      ~cfg:{ Campaign.default_config with max_trials = Some trials }
      target
  in
  {
    label = "heap slack (IS, whole program)";
    variant_a = "64Ki words of slack";
    counts_a = run_with 65536;
    variant_b = "no slack";
    counts_b = run_with 0;
  }

type acl_vs_taint = {
  at_app : string;
  acl_peak : int;    (** alive corrupted locations, paper semantics *)
  taint_peak : int;  (** all corrupted locations, liveness-unaware *)
  acl_final : int;
  taint_final : int;
}

(** Ablation 3: peak of the ACL series vs the liveness-unaware
    corrupted-location count on the Figure 7 fault. *)
let acl_vs_taint ?(app = Lulesh.app) () : acl_vs_taint =
  let series = Experiments.fig7 app in
  let c = Experiments.context app in
  let fault = series.Experiments.as_fault in
  let budget = 10 * c.Experiments.clean.Machine.instructions in
  let _, faulty = App.trace_with_fault app fault ~budget in
  (* liveness-unaware walk: just track the corrupted-set size *)
  let w = Align.create ~fault ~clean:c.Experiments.trace ~faulty () in
  let peak = ref 0 in
  let finished = ref false in
  while not !finished do
    match Align.step w with
    | Align.Step _ ->
        let n = Align.corrupted_count w in
        if n > !peak then peak := n
    | Align.Diverged _ | Align.End -> finished := true
  done;
  {
    at_app = app.App.name;
    acl_peak = series.Experiments.as_result.Acl.peak;
    taint_peak = !peak;
    acl_final = series.Experiments.as_result.Acl.final;
    taint_final = Align.corrupted_count w;
  }
