(* Paired recovery campaigns across fault models; see the mli. *)

type mode = Serial | Mpi of int

let mode_to_string = function
  | Serial -> "serial"
  | Mpi n -> Printf.sprintf "mpi(%d)" n

type cell = {
  rc_mode : mode;
  rc_model : Fault_model.t;
  rc_recovery : Campaign.recovery;
  rc_counts : Campaign.counts;
}

type message_cell = {
  rm_kind : string;
  rm_reliable : bool;
  rm_counts : Campaign.counts;
  rm_injected : int;
  rm_resent : int;
}

type report = {
  re_app : string;
  re_seed : int;
  re_size : int;
  re_serial_trials : int;
  re_mpi_trials : int;
  re_msg_trials : int;
  re_clean_instructions : int;
  re_cells : cell list;
  re_messages : message_cell list;
}

let rate part (c : Campaign.counts) =
  if c.Campaign.trials = 0 then 0.0
  else float_of_int part /. float_of_int c.Campaign.trials

let sdc_rate (c : Campaign.counts) = rate c.Campaign.failed c
let crash_rate (c : Campaign.counts) = rate c.Campaign.crashed c
let recovered_rate (c : Campaign.counts) = rate c.Campaign.recovered c

let default_models =
  [
    Fault_model.Single_bit;
    Fault_model.Double_adjacent;
    Fault_model.Burst 8;
    Fault_model.Stuck_at;
  ]

let default_policies =
  [ Campaign.No_recovery; Campaign.Rollback { max_restores = 3 } ]

(* The wrapped program carries the ring-exchange epilogue but is
   serial-identical to the original (the [np > 1] guard), so serial and
   parallel cells run the *same* program — the Wu-style comparison the
   paper makes between serial and MPI manifestations. *)
let wrapped_program (app : App.t) : Prog.t =
  let r = App.reference_value app in
  let prog =
    Compile.compile (Mpi_wrap.ring_exchange (app.App.build ~ref_value:(Some r)))
  in
  match app.App.transform with Some f -> f prog | None -> prog

let evaluate ?(seed = Campaign.default_config.Campaign.seed)
    ?(models = default_models) ?(policies = default_policies) ?(size = 4)
    ?(serial_trials = 120) ?(mpi_trials = 40) ?(msg_trials = 12)
    ?(recv_timeout_s = 2.0) (app : App.t) : report =
  let prog = wrapped_program app in
  let verify = App.verify app in
  let t = Trace.create () in
  let iter_mark = Prog.mark_id prog App.iter_mark_name in
  let clean =
    Machine.run prog { Machine.default_config with trace = Some t; iter_mark }
  in
  (match clean.Machine.outcome with
  | Machine.Finished -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Recovery_eval: %s fault-free run did not finish"
           app.App.name));
  let clean_instructions = clean.Machine.instructions in
  let target = Campaign.whole_program_target prog t in
  let budget =
    Campaign.default_config.Campaign.budget_factor * clean_instructions
  in
  (* serial cells ride the resilient executor: trial [i] of every cell
     draws from [Rng.derive ~seed ~index:i], and site selection is the
     stream's first draws, shared by all models — paired in the
     strongest available sense *)
  let serial_cell model recovery =
    let cfg =
      {
        Campaign.default_config with
        seed;
        max_trials = Some serial_trials;
        model;
        recovery;
      }
    in
    let counts =
      Campaign.run prog ~verify ~clean_instructions ~cfg target
    in
    { rc_mode = Serial; rc_model = model; rc_recovery = recovery; rc_counts = counts }
  in
  (* parallel cells inject the same per-trial sampled fault into one
     rank of a [size]-rank bundle (the victim rank is the next draw of
     the same stream) and classify the whole bundle *)
  let mpi_cell model recovery =
    let recover = Campaign.machine_recover recovery in
    let counts = ref Campaign.zero_counts in
    for i = 0 to mpi_trials - 1 do
      let rng = Rng.derive ~seed ~index:i in
      let fault = Campaign.sample_fault ~model rng target in
      let rank = Rng.int rng size in
      let b =
        Runner.run ~size ~fault:(rank, fault) ?recover ~budget
          ~recv_timeout_s prog
      in
      counts := Campaign.add_outcome !counts (Runner.classify ~verify b)
    done;
    {
      rc_mode = Mpi size;
      rc_model = model;
      rc_recovery = recovery;
      rc_counts = !counts;
    }
  in
  let cells =
    List.concat_map
      (fun model ->
        List.concat_map
          (fun policy -> [ serial_cell model policy; mpi_cell model policy ])
          policies)
      models
  in
  (* message-fault cells: no VM fault, the transport itself misbehaves;
     the raw transport shows the failure mode, the reliable transport
     shows the recovery (checksums + receiver-driven resend) *)
  let message_cell kind (plan_of : int -> Comm.fault_plan) reliable =
    let counts = ref Campaign.zero_counts in
    let injected = ref 0 and resent = ref 0 in
    for i = 0 to msg_trials - 1 do
      let b =
        Runner.run ~size ~faults:(plan_of i) ~reliable
          ~recv_timeout_s:(min recv_timeout_s 0.75) ~budget prog
      in
      let s = b.Runner.comm_stats in
      injected :=
        !injected + s.Comm.dropped + s.Comm.corrupted + s.Comm.duplicated;
      resent := !resent + s.Comm.resent;
      counts := Campaign.add_outcome !counts (Runner.classify ~verify b)
    done;
    {
      rm_kind = kind;
      rm_reliable = reliable;
      rm_counts = !counts;
      rm_injected = !injected;
      rm_resent = !resent;
    }
  in
  let plan p i =
    let trial_seed = (seed * 8191) + (1009 * i) in
    match p with
    | `Drop -> { Comm.seed = trial_seed; drop_p = 0.25; corrupt_p = 0.0; dup_p = 0.0 }
    | `Corrupt ->
        { Comm.seed = trial_seed; drop_p = 0.0; corrupt_p = 0.25; dup_p = 0.0 }
    | `Dup -> { Comm.seed = trial_seed; drop_p = 0.0; corrupt_p = 0.0; dup_p = 0.25 }
  in
  let messages =
    List.concat_map
      (fun (kind, p) ->
        [
          message_cell kind (plan p) false;
          message_cell kind (plan p) true;
        ])
      [ ("drop", `Drop); ("corrupt", `Corrupt); ("duplicate", `Dup) ]
  in
  {
    re_app = app.App.name;
    re_seed = seed;
    re_size = size;
    re_serial_trials = serial_trials;
    re_mpi_trials = mpi_trials;
    re_msg_trials = msg_trials;
    re_clean_instructions = clean_instructions;
    re_cells = cells;
    re_messages = messages;
  }

let find_cell (r : report) ~mode ~model ~recovery =
  List.find_opt
    (fun c ->
      c.rc_mode = mode && c.rc_model = model && c.rc_recovery = recovery)
    r.re_cells

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "@[<v>%s: paired recovery campaigns (seed %d; serial %d trials, %s %d \
     trials, message %d trials)@,"
    r.re_app r.re_seed r.re_serial_trials
    (mode_to_string (Mpi r.re_size))
    r.re_mpi_trials r.re_msg_trials;
  Fmt.pf ppf "%-8s %-15s %-11s %6s %6s %6s %6s %6s  %8s %8s %8s@," "mode"
    "model" "recovery" "trials" "benign" "SDC" "crash" "recov" "SDCrate"
    "crashrt" "recovrt";
  List.iter
    (fun c ->
      let k = c.rc_counts in
      Fmt.pf ppf "%-8s %-15s %-11s %6d %6d %6d %6d %6d  %8.4f %8.4f %8.4f@,"
        (mode_to_string c.rc_mode)
        (Fault_model.to_string c.rc_model)
        (Campaign.recovery_to_string c.rc_recovery)
        k.Campaign.trials k.Campaign.success k.Campaign.failed
        k.Campaign.crashed k.Campaign.recovered (sdc_rate k) (crash_rate k)
        (recovered_rate k))
    r.re_cells;
  (* the headline pairing: how much crash rate does rollback buy, per
     fault model and execution mode *)
  (match r.re_cells with
  | [] -> ()
  | _ ->
      Fmt.pf ppf "@,crash-rate delta (rollback vs none):@,";
      List.iter
        (fun mode ->
          List.iter
            (fun model ->
              let none =
                find_cell r ~mode ~model ~recovery:Campaign.No_recovery
              in
              let rb =
                List.find_opt
                  (fun c ->
                    c.rc_mode = mode && c.rc_model = model
                    && c.rc_recovery <> Campaign.No_recovery)
                  r.re_cells
              in
              match (none, rb) with
              | Some n, Some b ->
                  Fmt.pf ppf "  %-8s %-15s %8.4f -> %8.4f (%+.4f)@,"
                    (mode_to_string mode)
                    (Fault_model.to_string model)
                    (crash_rate n.rc_counts) (crash_rate b.rc_counts)
                    (crash_rate b.rc_counts -. crash_rate n.rc_counts)
              | _ -> ())
            (List.sort_uniq compare
               (List.map (fun c -> c.rc_model) r.re_cells)))
        [ Serial; Mpi r.re_size ]);
  (match r.re_messages with
  | [] -> ()
  | ms ->
      Fmt.pf ppf
        "@,message faults at %s (p=0.25 per send; raw vs reliable):@,"
        (mode_to_string (Mpi r.re_size));
      Fmt.pf ppf "%-11s %-9s %6s %6s %6s %6s %6s  %9s %7s@," "kind"
        "transport" "trials" "benign" "SDC" "crash" "recov" "injected"
        "resent";
      List.iter
        (fun m ->
          let k = m.rm_counts in
          Fmt.pf ppf "%-11s %-9s %6d %6d %6d %6d %6d  %9d %7d@," m.rm_kind
            (if m.rm_reliable then "reliable" else "raw")
            k.Campaign.trials k.Campaign.success k.Campaign.failed
            k.Campaign.crashed k.Campaign.recovered m.rm_injected m.rm_resent)
        ms);
  Fmt.pf ppf "@]"

let to_csv (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "app,section,mode,model,recovery,transport,trials,success,failed,crashed,recovered,sdc_rate,crash_rate,recovered_rate,injected,resent\n";
  List.iter
    (fun c ->
      let k = c.rc_counts in
      Buffer.add_string b
        (Printf.sprintf "%s,vm,%s,%s,%s,,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,,\n"
           r.re_app
           (mode_to_string c.rc_mode)
           (Fault_model.to_string c.rc_model)
           (Campaign.recovery_to_string c.rc_recovery)
           k.Campaign.trials k.Campaign.success k.Campaign.failed
           k.Campaign.crashed k.Campaign.recovered (sdc_rate k)
           (crash_rate k) (recovered_rate k)))
    r.re_cells;
  List.iter
    (fun m ->
      let k = m.rm_counts in
      Buffer.add_string b
        (Printf.sprintf
           "%s,message,%s,,%s,%s,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%d,%d\n"
           r.re_app
           (mode_to_string (Mpi r.re_size))
           m.rm_kind
           (if m.rm_reliable then "reliable" else "raw")
           k.Campaign.trials k.Campaign.success k.Campaign.failed
           k.Campaign.crashed k.Campaign.recovered (sdc_rate k)
           (crash_rate k) (recovered_rate k) m.rm_injected m.rm_resent))
    r.re_messages;
  Buffer.contents b
