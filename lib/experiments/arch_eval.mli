(** Cross-structure fault campaigns: the same application injected
    through every microarchitectural surface — register file (the
    historical default), cache metadata, cache data, and the
    instruction store — under one seed, one trial count, and one cache
    geometry, so the per-structure SDC/crash/recovery profiles are
    directly comparable.

    All cells of one report share the baked program and the fault-free
    traced run; each cell's trial [i] draws from
    [Rng.derive ~seed ~index:i], so counts are a pure function of
    (app, seed, trials, structure, geometry) — identical across
    [--jobs] values, backends, and resumes. *)

type cell = {
  ac_structure : Structure.t;
  ac_population : int;  (** fault-site population of the surface *)
  ac_counts : Campaign.counts;
}

type report = {
  ar_app : string;
  ar_seed : int;
  ar_trials : int;  (** trial cap per cell *)
  ar_geometry : Cache_model.geometry;  (** of the cache cells *)
  ar_clean_instructions : int;
  ar_cells : cell list;
}

val evaluate :
  ?seed:int ->
  ?trials:int ->
  ?structures:Structure.t list ->
  ?geom:Cache_model.geometry ->
  ?backend:Backend.t ->
  ?jobs:int ->
  App.t ->
  report
(** Run one campaign per structure (default: {!Structure.all}, 150
    trials each, the default cache geometry).  Cache-fault trials run
    on the interpreter regardless of [backend] (the compiled backend
    reports them unsupported and falls back); istore trials re-bake the
    mutated program and run it on [backend].
    @raise Invalid_argument if the app's fault-free run does not
    finish. *)

val find_cell : report -> Structure.t -> cell option

val sdc_rate : Campaign.counts -> float
val crash_rate : Campaign.counts -> float
val recovered_rate : Campaign.counts -> float

val pp_report : Format.formatter -> report -> unit
(** One row per structure: population, counts, and rates. *)

val to_csv : report -> string
