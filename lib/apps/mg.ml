(** MG — 3-D multigrid V-cycle (NPB MG, scaled down).

    Solves the scalar Poisson problem A u = v on an [n]^3 grid with
    zero boundaries using V-cycles over three grid levels.  The
    smoother [psinv] is implemented in the shape of Figure 9 of the
    paper — the [c[0..2]]-weighted stencil with the [r1]/[r2] row
    temporaries — which is where the paper finds the Repeated Additions
    and Dead Corrupted Locations patterns in MG.

    Regions follow Table I: [mg_a] = fine-grid residual, [mg_b] =
    restriction + bottom solve (small), [mg_c] = prolongation +
    mid-level smoothing, [mg_d] = finest-level smoothing (the biggest
    region).  The main loop runs [niter] V-cycles. *)

let n0 = 6 (* finest grid, including boundary; interior is (n0-2)^3 *)
let n1 = 3
let niter = 4

(* smoother and residual stencil weights (NPB MG class-S flavor) *)
let c0 = -3.0 /. 8.0
let c1 = 1.0 /. 32.0
let c2 = -1.0 /. 64.0
let a0 = -8.0 /. 3.0
let a1 = 0.0
let a2 = 1.0 /. 6.0
let a3 = 1.0 /. 12.0

(* Builds, for one grid level, the psinv (smoother) function in the
   Figure-9 shape: row temporaries r1/r2 hold the aggregated face and
   edge neighbor sums, then u gets a repeated-addition update. *)
let psinv_fn ~(suffix : string) ~(nsz : int) ~(u : string) ~(r : string) :
    Ast.fundef =
  let open Ast in
  let nm = Stdlib.( - ) nsz 1 in
  let at arr i3 i2 i1 = idx3 arr i3 i2 i1 in
  {
    fname = "psinv" ^ suffix;
    params = [];
    ret = None;
    locals = [ DScalar ("ps_t", Ty.F64) ];
    body =
      [
        SFor
          ( "i3",
            i 1,
            i nm,
            [
              SFor
                ( "i2",
                  i 1,
                  i nm,
                  [
                    (* row temporaries: aggregate neighbors, then die *)
                    SFor
                      ( "i1",
                        i 0,
                        i nsz,
                        [
                          SStore
                            ( "r1",
                              [ v "i1" ],
                              at r (v "i3" - i 1) (v "i2") (v "i1")
                              + at r (v "i3" + i 1) (v "i2") (v "i1")
                              + at r (v "i3") (v "i2" - i 1) (v "i1")
                              + at r (v "i3") (v "i2" + i 1) (v "i1") );
                          SStore
                            ( "r2",
                              [ v "i1" ],
                              at r (v "i3" - i 1) (v "i2" - i 1) (v "i1")
                              + at r (v "i3" - i 1) (v "i2" + i 1) (v "i1")
                              + at r (v "i3" + i 1) (v "i2" - i 1) (v "i1")
                              + at r (v "i3" + i 1) (v "i2" + i 1) (v "i1") );
                        ] );
                    SFor
                      ( "i1",
                        i 1,
                        i nm,
                        [
                          (* the Figure 9 repeated-addition update *)
                          SStore
                            ( u,
                              [ v "i3"; v "i2"; v "i1" ],
                              at u (v "i3") (v "i2") (v "i1")
                              + (f c0 * at r (v "i3") (v "i2") (v "i1"))
                              + (f c1
                                * (at r (v "i3") (v "i2") (v "i1" - i 1)
                                  + at r (v "i3") (v "i2") (v "i1" + i 1)
                                  + idx1 "r1" (v "i1")))
                              + (f c2
                                * (idx1 "r2" (v "i1")
                                  + idx1 "r1" (v "i1" - i 1)
                                  + idx1 "r1" (v "i1" + i 1))) );
                        ] );
                  ] );
            ] );
      ];
  }

(* Residual r = v - A u for one level (same row-temporary shape). *)
let resid_fn ~(suffix : string) ~(nsz : int) ~(u : string) ~(vv : string)
    ~(r : string) : Ast.fundef =
  let open Ast in
  let nm = Stdlib.( - ) nsz 1 in
  let at arr i3 i2 i1 = idx3 arr i3 i2 i1 in
  {
    fname = "resid" ^ suffix;
    params = [];
    ret = None;
    locals = [];
    body =
      [
        SFor
          ( "i3",
            i 1,
            i nm,
            [
              SFor
                ( "i2",
                  i 1,
                  i nm,
                  [
                    SFor
                      ( "i1",
                        i 0,
                        i nsz,
                        [
                          SStore
                            ( "r1",
                              [ v "i1" ],
                              at u (v "i3" - i 1) (v "i2") (v "i1")
                              + at u (v "i3" + i 1) (v "i2") (v "i1")
                              + at u (v "i3") (v "i2" - i 1) (v "i1")
                              + at u (v "i3") (v "i2" + i 1) (v "i1") );
                          SStore
                            ( "r2",
                              [ v "i1" ],
                              at u (v "i3" - i 1) (v "i2" - i 1) (v "i1")
                              + at u (v "i3" - i 1) (v "i2" + i 1) (v "i1")
                              + at u (v "i3" + i 1) (v "i2" - i 1) (v "i1")
                              + at u (v "i3" + i 1) (v "i2" + i 1) (v "i1") );
                        ] );
                    SFor
                      ( "i1",
                        i 1,
                        i nm,
                        [
                          SStore
                            ( r,
                              [ v "i3"; v "i2"; v "i1" ],
                              at vv (v "i3") (v "i2") (v "i1")
                              - (f a0 * at u (v "i3") (v "i2") (v "i1"))
                              - (f a2
                                * (at u (v "i3") (v "i2") (v "i1" - i 1)
                                  + at u (v "i3") (v "i2") (v "i1" + i 1)
                                  + idx1 "r1" (v "i1")))
                              - (f a3
                                * (idx1 "r2" (v "i1")
                                  + idx1 "r1" (v "i1" - i 1)
                                  + idx1 "r1" (v "i1" + i 1))) );
                        ] );
                  ] );
            ] );
      ];
  }
  [@@warning "-27"]

(* Restriction: coarse <- 8-point average of the 2x2x2 fine block. *)
let rprj3_fn ~(suffix : string) ~(ncoarse : int) ~(fine : string)
    ~(coarse : string) : Ast.fundef =
  let open Ast in
  let nm = Stdlib.( - ) ncoarse 1 in
  {
    fname = "rprj3" ^ suffix;
    params = [];
    ret = None;
    locals = [ DScalar ("rp_s", Ty.F64) ];
    body =
      [
        SFor
          ( "i3",
            i 1,
            i nm,
            [
              SFor
                ( "i2",
                  i 1,
                  i nm,
                  [
                    SFor
                      ( "i1",
                        i 1,
                        i nm,
                        [
                          SAssign
                            ( "rp_s",
                              idx3 fine (i 2 * v "i3") (i 2 * v "i2")
                                (i 2 * v "i1")
                              + idx3 fine
                                  ((i 2 * v "i3") + i 1)
                                  (i 2 * v "i2") (i 2 * v "i1")
                              + idx3 fine (i 2 * v "i3")
                                  ((i 2 * v "i2") + i 1)
                                  (i 2 * v "i1")
                              + idx3 fine (i 2 * v "i3") (i 2 * v "i2")
                                  ((i 2 * v "i1") + i 1)
                              + idx3 fine
                                  ((i 2 * v "i3") + i 1)
                                  ((i 2 * v "i2") + i 1)
                                  (i 2 * v "i1")
                              + idx3 fine
                                  ((i 2 * v "i3") + i 1)
                                  (i 2 * v "i2")
                                  ((i 2 * v "i1") + i 1)
                              + idx3 fine (i 2 * v "i3")
                                  ((i 2 * v "i2") + i 1)
                                  ((i 2 * v "i1") + i 1)
                              + idx3 fine
                                  ((i 2 * v "i3") + i 1)
                                  ((i 2 * v "i2") + i 1)
                                  ((i 2 * v "i1") + i 1) );
                          SStore
                            ( coarse,
                              [ v "i3"; v "i2"; v "i1" ],
                              f 0.125 * v "rp_s" );
                        ] );
                  ] );
            ] );
      ];
  }

(* Prolongation: fine block += coarse value. *)
let interp_fn ~(suffix : string) ~(ncoarse : int) ~(coarse : string)
    ~(fine : string) : Ast.fundef =
  let open Ast in
  let nm = Stdlib.( - ) ncoarse 1 in
  let add o3 o2 o1 =
    Ast.SStore
      ( fine,
        [ (i 2 * v "i3") + i o3; (i 2 * v "i2") + i o2; (i 2 * v "i1") + i o1 ],
        idx3 fine
          ((i 2 * v "i3") + i o3)
          ((i 2 * v "i2") + i o2)
          ((i 2 * v "i1") + i o1)
        + idx3 coarse (v "i3") (v "i2") (v "i1") )
  in
  {
    fname = "interp" ^ suffix;
    params = [];
    ret = None;
    locals = [];
    body =
      [
        SFor
          ( "i3",
            i 1,
            i nm,
            [
              SFor
                ( "i2",
                  i 1,
                  i nm,
                  [
                    SFor
                      ( "i1",
                        i 1,
                        i nm,
                        [
                          add 0 0 0; add 0 0 1; add 0 1 0; add 0 1 1;
                          add 1 0 0; add 1 0 1; add 1 1 0; add 1 1 1;
                        ] );
                  ] );
            ] );
      ];
  }

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let zero3 arr nsz =
    SFor
      ( "i3",
        i 0,
        i nsz,
        [
          SFor
            ( "i2",
              i 0,
              i nsz,
              [
                SFor
                  ("i1", i 0, i nsz, [ SStore (arr, [ v "i3"; v "i2"; v "i1" ], f 0.0) ]);
              ] );
        ] )
  in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("charge", Ty.F64);
          DScalar ("p3", Ty.I64);
          DScalar ("p2", Ty.I64);
          DScalar ("p1", Ty.I64);
          DScalar ("rn", Ty.F64);
        ]
        @ App.verification_locals;
      body =
        [
          (* setup: +-1 charges at randlc-chosen interior points *)
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          zero3 "u0" n0;
          zero3 "vv" n0;
          zero3 "r0" n0;
          zero3 "u1" n1;
          zero3 "r1c" n1;
          SAssign ("charge", f 1.0);
          SFor
            ( "k",
              i 0,
              i 8,
              [
                SAssign
                  ( "p3",
                    i 1 + to_int (to_float (i (Stdlib.( - ) n0 2)) * Randlc ("tran", v "amult")) );
                SAssign
                  ( "p2",
                    i 1 + to_int (to_float (i (Stdlib.( - ) n0 2)) * Randlc ("tran", v "amult")) );
                SAssign
                  ( "p1",
                    i 1 + to_int (to_float (i (Stdlib.( - ) n0 2)) * Randlc ("tran", v "amult")) );
                SStore ("vv", [ v "p3"; v "p2"; v "p1" ], v "charge");
                SAssign ("charge", f 0.0 - v "charge");
              ] );
          (* main loop: V-cycles (mg3P) *)
          SFor
            ( "it",
              i 0,
              i niter,
              [
                SMark App.iter_mark_name;
                SRegion ("mg_a", 425, 429, [ SCall ("resid0", []) ]);
                SRegion
                  ( "mg_b",
                    430,
                    437,
                    [
                      SCall ("rprj30", []);
                      zero3 "u1" n1;
                      SCall ("psinv1", []);
                    ] );
                SRegion
                  ( "mg_c",
                    438,
                    456,
                    [ SCall ("interp0", []); SCall ("psinv0", []) ] );
                SRegion
                  ( "mg_d",
                    457,
                    462,
                    [ SCall ("resid0", []); SCall ("psinv0", []) ] );
              ] );
          (* verification: L2 norm of the final residual *)
          SCall ("resid0", []);
          SAssign ("rn", f 0.0);
          SFor
            ( "i3",
              i 0,
              i n0,
              [
                SFor
                  ( "i2",
                    i 0,
                    i n0,
                    [
                      SFor
                        ( "i1",
                          i 0,
                          i n0,
                          [
                            SAssign
                              ( "rn",
                                v "rn"
                                + (idx3 "r0" (v "i3") (v "i2") (v "i1")
                                  * idx3 "r0" (v "i3") (v "i2") (v "i1")) );
                          ] );
                    ] );
              ] );
          SAssign
            ( "result",
              sqrt_ (v "rn" / to_float (i (Stdlib.( * ) n0 (Stdlib.( * ) n0 n0)))) );
        ]
        @ App.verification_block ~ref_value ~tolerance:1e-9 ();
    }
  in
  {
    globals =
      [
        DArr ("u0", Ty.F64, [ n0; n0; n0 ]);
        DArr ("vv", Ty.F64, [ n0; n0; n0 ]);
        DArr ("r0", Ty.F64, [ n0; n0; n0 ]);
        DArr ("u1", Ty.F64, [ n1; n1; n1 ]);
        DArr ("r1c", Ty.F64, [ n1; n1; n1 ]);
        DArr ("r1", Ty.F64, [ n0 ]);
        DArr ("r2", Ty.F64, [ n0 ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
      ];
    funs =
      [
        psinv_fn ~suffix:"0" ~nsz:n0 ~u:"u0" ~r:"r0";
        psinv_fn ~suffix:"1" ~nsz:n1 ~u:"u1" ~r:"r1c";
        resid_fn ~suffix:"0" ~nsz:n0 ~u:"u0" ~vv:"vv" ~r:"r0";
        rprj3_fn ~suffix:"0" ~ncoarse:n1 ~fine:"r0" ~coarse:"r1c";
        interp_fn ~suffix:"0" ~ncoarse:n1 ~coarse:"u1" ~fine:"u0";
        main;
      ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "MG";
    description = "3-D multigrid V-cycle Poisson solver (NPB MG)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 1e-9;
    main_iterations = niter;
    region_names = [ "mg_a"; "mg_b"; "mg_c"; "mg_d" ];
    transform = None;
  }

(** Pure-OCaml reference implementation of the same V-cycle, used to
    validate the compiler + VM pipeline end to end. *)
let reference_rnorm () : float =
  let tran = ref 314159265.0 and amult = 1220703125.0 in
  let randlc () =
    let x', r = Machine.randlc_step !tran amult in
    tran := x';
    r
  in
  let mk n = Array.init n (fun _ -> Array.make_matrix n n 0.0) in
  let u0 = mk n0 and vv = mk n0 and r0 = mk n0 in
  let u1 = mk n1 and r1c = mk n1 in
  let r1 = Array.make n0 0.0 and r2 = Array.make n0 0.0 in
  (* charges *)
  let charge = ref 1.0 in
  for _k = 0 to 7 do
    let p3 = 1 + int_of_float (float_of_int (n0 - 2) *. randlc ()) in
    let p2 = 1 + int_of_float (float_of_int (n0 - 2) *. randlc ()) in
    let p1 = 1 + int_of_float (float_of_int (n0 - 2) *. randlc ()) in
    vv.(p3).(p2).(p1) <- !charge;
    charge := 0.0 -. !charge
  done;
  let psinv nsz u r =
    for i3 = 1 to nsz - 2 do
      for i2 = 1 to nsz - 2 do
        for i1 = 0 to nsz - 1 do
          r1.(i1) <-
            r.(i3 - 1).(i2).(i1) +. r.(i3 + 1).(i2).(i1)
            +. r.(i3).(i2 - 1).(i1) +. r.(i3).(i2 + 1).(i1);
          r2.(i1) <-
            r.(i3 - 1).(i2 - 1).(i1) +. r.(i3 - 1).(i2 + 1).(i1)
            +. r.(i3 + 1).(i2 - 1).(i1) +. r.(i3 + 1).(i2 + 1).(i1)
        done;
        for i1 = 1 to nsz - 2 do
          u.(i3).(i2).(i1) <-
            u.(i3).(i2).(i1)
            +. (c0 *. r.(i3).(i2).(i1))
            +. (c1 *. (r.(i3).(i2).(i1 - 1) +. r.(i3).(i2).(i1 + 1) +. r1.(i1)))
            +. (c2 *. (r2.(i1) +. r1.(i1 - 1) +. r1.(i1 + 1)))
        done
      done
    done
  in
  let resid nsz u vv r =
    for i3 = 1 to nsz - 2 do
      for i2 = 1 to nsz - 2 do
        for i1 = 0 to nsz - 1 do
          r1.(i1) <-
            u.(i3 - 1).(i2).(i1) +. u.(i3 + 1).(i2).(i1)
            +. u.(i3).(i2 - 1).(i1) +. u.(i3).(i2 + 1).(i1);
          r2.(i1) <-
            u.(i3 - 1).(i2 - 1).(i1) +. u.(i3 - 1).(i2 + 1).(i1)
            +. u.(i3 + 1).(i2 - 1).(i1) +. u.(i3 + 1).(i2 + 1).(i1)
        done;
        for i1 = 1 to nsz - 2 do
          r.(i3).(i2).(i1) <-
            vv.(i3).(i2).(i1)
            -. (a0 *. u.(i3).(i2).(i1))
            -. (a2 *. (u.(i3).(i2).(i1 - 1) +. u.(i3).(i2).(i1 + 1) +. r1.(i1)))
            -. (a3 *. (r2.(i1) +. r1.(i1 - 1) +. r1.(i1 + 1)))
        done
      done
    done
  in
  ignore a1;
  let rprj3 ncoarse fine coarse =
    for i3 = 1 to ncoarse - 2 do
      for i2 = 1 to ncoarse - 2 do
        for i1 = 1 to ncoarse - 2 do
          let s = ref 0.0 in
          for d3 = 0 to 1 do
            for d2 = 0 to 1 do
              for d1 = 0 to 1 do
                s := !s +. fine.((2 * i3) + d3).((2 * i2) + d2).((2 * i1) + d1)
              done
            done
          done;
          coarse.(i3).(i2).(i1) <- 0.125 *. !s
        done
      done
    done
  in
  let interp ncoarse coarse fine =
    for i3 = 1 to ncoarse - 2 do
      for i2 = 1 to ncoarse - 2 do
        for i1 = 1 to ncoarse - 2 do
          for d3 = 0 to 1 do
            for d2 = 0 to 1 do
              for d1 = 0 to 1 do
                let f3 = (2 * i3) + d3 and f2 = (2 * i2) + d2 and f1 = (2 * i1) + d1 in
                fine.(f3).(f2).(f1) <- fine.(f3).(f2).(f1) +. coarse.(i3).(i2).(i1)
              done
            done
          done
        done
      done
    done
  in
  let zero3 a nsz =
    for i3 = 0 to nsz - 1 do
      for i2 = 0 to nsz - 1 do
        for i1 = 0 to nsz - 1 do
          a.(i3).(i2).(i1) <- 0.0
        done
      done
    done
  in
  for _it = 0 to niter - 1 do
    resid n0 u0 vv r0;
    rprj3 n1 r0 r1c;
    zero3 u1 n1;
    psinv n1 u1 r1c;
    interp n1 u1 u0;
    psinv n0 u0 r0;
    resid n0 u0 vv r0;
    psinv n0 u0 r0
  done;
  resid n0 u0 vv r0;
  let rn = ref 0.0 in
  for i3 = 0 to n0 - 1 do
    for i2 = 0 to n0 - 1 do
      for i1 = 0 to n0 - 1 do
        rn := !rn +. (r0.(i3).(i2).(i1) *. r0.(i3).(i2).(i1))
      done
    done
  done;
  Float.sqrt (!rn /. float_of_int (n0 * n0 * n0))
