(** The benchmark-application abstraction: a mini-C program with named
    code regions, a main-loop iteration marker, a [RESULT x] print, and
    an NPB-style in-code verification phase whose reference value is
    baked in by a two-phase build (calibration run, then rebuild with
    the measured reference as the verification constant). *)

type t = {
  name : string;
  description : string;
  build : ref_value:float option -> Ast.program;
      (** [None] builds the calibration variant (no verification);
          [Some r] bakes [r] in as the reference value *)
  tolerance : float;  (** relative epsilon of the verification phase *)
  main_iterations : int;
  region_names : string list;  (** paper-style names, in region order *)
  transform : (Prog.t -> Prog.t) option;
      (** post-compile IR rewrite (e.g. an automatic-hardening
          pipeline), applied to the full program after the reference
          value is baked in.  Must preserve fault-free semantics: the
          transformed program is the one run as the reference, so it
          must still print the same RESULT and verify against the baked
          constant. *)
}

val iter_mark_name : string
(** The marker every app places at the top of its main-loop body. *)

exception App_error of string
(** Raised when an app fails its own calibration or reference run. *)

val parse_result : string -> float option
(** The [RESULT x] line of a run's output. *)

val verified : string -> bool
(** Did the output contain [VERIFIED 1]? *)

val program : t -> Prog.t
(** The compiled program with its verification phase baked in (cached;
    the first call runs the two-phase build). *)

val reference : t -> Machine.result
(** The cached fault-free run of {!program}. *)

val reference_value : t -> float
(** The headline value baked into the verification phase. *)

val iter_mark : t -> int

val verify : t -> Machine.result -> bool
(** The campaign predicate: a finished run is a Verification Success
    iff the program's own verification phase accepted it. *)

val trace : t -> Machine.result * Trace.t
(** Fault-free traced run with iteration marking. *)

val trace_with_fault : t -> Machine.fault -> budget:int -> Machine.result * Trace.t

val verification_block :
  ?result_var:string ->
  ref_value:float option ->
  tolerance:float ->
  unit ->
  Ast.stmt list
(** The shared in-code verification phase (a conditional-statement
    pattern, like NPB's): prints RESULT, compares against the baked
    reference, prints VERIFIED. *)

val verification_locals : Ast.decl list
(** Locals required by {!verification_block}. *)
