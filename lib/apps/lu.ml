(** LU — SSOR solver on a structured grid (NPB LU, reduced to a scalar
    2-D analog).

    Solves the 5-point Poisson system with symmetric successive
    over-relaxation: each main-loop iteration performs a lower
    (ascending) sweep, an upper (descending) sweep, and computes the
    residual norm.  The sweeps are the analogs of NPB LU's [blts]/
    [buts] triangular solves: heavily overwrite-dominated with almost
    no shifts — the Table-IV profile of LU. *)

let n = 12
let niter = 5
let omega = 1.2
let h2 = 1.0 /. Float.of_int ((n - 1) * (n - 1))

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let nm = Stdlib.( - ) n 1 in
  (* one Gauss-Seidel relaxation at (i2, i1): u += omega*(rhs - Au)/4 *)
  let relax =
    [
      Ast.SAssign
        ( "res",
          (f h2 * idx2 "frc" (v "i2") (v "i1"))
          - (f 4.0 * idx2 "u" (v "i2") (v "i1"))
          + idx2 "u" (v "i2" - i 1) (v "i1")
          + idx2 "u" (v "i2" + i 1) (v "i1")
          + idx2 "u" (v "i2") (v "i1" - i 1)
          + idx2 "u" (v "i2") (v "i1" + i 1) );
      Ast.SStore
        ( "u",
          [ v "i2"; v "i1" ],
          idx2 "u" (v "i2") (v "i1") + (f (omega /. 4.0) * v "res") );
    ]
  in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [ DScalar ("res", Ty.F64); DScalar ("rn", Ty.F64) ]
        @ App.verification_locals;
      body =
        [
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          SFor
            ( "i2",
              i 0,
              i n,
              [
                SFor
                  ( "i1",
                    i 0,
                    i n,
                    [
                      SStore ("u", [ v "i2"; v "i1" ], f 0.0);
                      SStore
                        ( "frc",
                          [ v "i2"; v "i1" ],
                          Randlc ("tran", v "amult") - f 0.5 );
                    ] );
              ] );
          SFor
            ( "it",
              i 0,
              i niter,
              [
                SMark App.iter_mark_name;
                (* lower-triangular sweep (blts analog) *)
                SRegion
                  ( "lu_a",
                    553,
                    624,
                    [
                      SFor
                        ( "i2",
                          i 1,
                          i nm,
                          [ SFor ("i1", i 1, i nm, relax) ] );
                    ] );
                (* upper-triangular sweep (buts analog), descending *)
                SRegion
                  ( "lu_b",
                    626,
                    699,
                    [
                      SForStep
                        ( "i2x",
                          i 0,
                          i (Stdlib.( - ) nm 1),
                          i 1,
                          [
                            SAssign ("i2", i (Stdlib.( - ) nm 1) - v "i2x");
                            SForStep
                              ( "i1x",
                                i 0,
                                i (Stdlib.( - ) nm 1),
                                i 1,
                                [
                                  SAssign
                                    ("i1", i (Stdlib.( - ) nm 1) - v "i1x");
                                ]
                                @ relax );
                          ] );
                    ] );
                (* residual norm (rhs/l2norm analog) *)
                SRegion
                  ( "lu_c",
                    701,
                    748,
                    [
                      SAssign ("rn", f 0.0);
                      SFor
                        ( "i2",
                          i 1,
                          i nm,
                          [
                            SFor
                              ( "i1",
                                i 1,
                                i nm,
                                [
                                  SAssign
                                    ( "res",
                                      (f h2 * idx2 "frc" (v "i2") (v "i1"))
                                      - (f 4.0 * idx2 "u" (v "i2") (v "i1"))
                                      + idx2 "u" (v "i2" - i 1) (v "i1")
                                      + idx2 "u" (v "i2" + i 1) (v "i1")
                                      + idx2 "u" (v "i2") (v "i1" - i 1)
                                      + idx2 "u" (v "i2") (v "i1" + i 1) );
                                  SAssign ("rn", v "rn" + (v "res" * v "res"));
                                ] );
                          ] );
                    ] );
              ] );
          SAssign ("result", sqrt_ (v "rn") );
        ]
        @ App.verification_block ~ref_value ~tolerance:1e-9 ();
    }
  in
  {
    globals =
      [
        DArr ("u", Ty.F64, [ n; n ]);
        DArr ("frc", Ty.F64, [ n; n ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
        DScalar ("i2", Ty.I64);
        DScalar ("i1", Ty.I64);
      ];
    funs = [ main ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "LU";
    description = "SSOR structured-grid solver (NPB LU analog)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 1e-9;
    main_iterations = niter;
    region_names = [ "lu_a"; "lu_b"; "lu_c" ];
    transform = None;
  }

(** Pure-OCaml reference implementation of the same SSOR iteration. *)
let reference_rnorm () : float =
  let tran = ref 314159265.0 and amult = 1220703125.0 in
  let randlc () =
    let x', r = Machine.randlc_step !tran amult in
    tran := x';
    r
  in
  let u = Array.make_matrix n n 0.0 in
  let frc = Array.make_matrix n n 0.0 in
  for i2 = 0 to n - 1 do
    for i1 = 0 to n - 1 do
      u.(i2).(i1) <- 0.0;
      frc.(i2).(i1) <- randlc () -. 0.5
    done
  done;
  let residual i2 i1 =
    (h2 *. frc.(i2).(i1))
    -. (4.0 *. u.(i2).(i1))
    +. u.(i2 - 1).(i1) +. u.(i2 + 1).(i1) +. u.(i2).(i1 - 1) +. u.(i2).(i1 + 1)
  in
  let relax i2 i1 = u.(i2).(i1) <- u.(i2).(i1) +. (omega /. 4.0 *. residual i2 i1) in
  let rn = ref 0.0 in
  for _it = 0 to niter - 1 do
    for i2 = 1 to n - 2 do
      for i1 = 1 to n - 2 do
        relax i2 i1
      done
    done;
    for i2x = 0 to n - 3 do
      let i2 = n - 2 - i2x in
      for i1x = 0 to n - 3 do
        let i1 = n - 2 - i1x in
        relax i2 i1
      done
    done;
    rn := 0.0;
    for i2 = 1 to n - 2 do
      for i1 = 1 to n - 2 do
        let r = residual i2 i1 in
        rn := !rn +. (r *. r)
      done
    done
  done;
  Float.sqrt !rn
