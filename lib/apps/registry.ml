(** The benchmark registry: the ten programs of the paper's evaluation
    (Section V-A), plus the hardened CG variants of Use Case 1. *)

(** The five programs analyzed region-by-region in Figures 5/6 and
    Table I. *)
let analyzed : App.t list = [ Cg.app; Mg.app; Kmeans.app; Is.app; Lulesh.app ]

(** All ten programs of the prediction study (Table IV). *)
let all : App.t list =
  [
    Cg.app; Mg.app; Lu.app; Bt.app; Is.app;
    Dc.app; Sp.app; Ft.app; Kmeans.app; Lulesh.app;
  ]

(** Use Case 1 variants (Table III), in the paper's row order. *)
let cg_variants : App.t list =
  [ Cg.app; Cg.app_hardened_dcl; Cg.app_hardened_trunc; Cg.app_hardened_all ]

let pool () : App.t list = all @ cg_variants

let names () : string list =
  List.map (fun (a : App.t) -> a.App.name) (pool ())

exception Unknown_app of {
  name : string;
  suggestions : string list;
  known : string list;
}

let () =
  Printexc.register_printer (function
    | Unknown_app { name; suggestions; known } ->
        Some
          (Printf.sprintf "Registry.Unknown_app: %S%s (known: %s)" name
             (match suggestions with
             | [] -> ""
             | s -> "; did you mean " ^ String.concat " or " s ^ "?")
             (String.concat ", " known))
    | _ -> None)

(* Levenshtein distance, for near-match suggestions on typos. *)
let edit_distance (a : string) (b : string) : int =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if Char.equal a.[i - 1] b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest ~(candidates : string list) (name : string) : string list =
  let lname = String.lowercase_ascii name in
  let scored =
    List.filter_map
      (fun known ->
        let lknown = String.lowercase_ascii known in
        let d = edit_distance lname lknown in
        let prefix =
          String.length lname >= 2
          && String.length lknown >= String.length lname
          && String.equal (String.sub lknown 0 (String.length lname)) lname
        in
        if d <= 2 || prefix then Some (d, known) else None)
      (List.sort_uniq compare candidates)
  in
  List.sort compare scored |> List.map snd

let suggestions_for (name : string) : string list =
  suggest ~candidates:(names ()) name

let find_opt (name : string) : App.t option =
  let lname = String.lowercase_ascii name in
  match
    List.find_opt
      (fun (a : App.t) -> String.equal a.App.name name)
      (pool ())
  with
  | Some a -> Some a
  | None ->
      List.find_opt
        (fun (a : App.t) ->
          String.equal (String.lowercase_ascii a.App.name) lname)
        (pool ())

let find (name : string) : App.t =
  match find_opt name with
  | Some a -> a
  | None ->
      raise
        (Unknown_app
           {
             name;
             suggestions = suggestions_for name;
             known = List.sort_uniq compare (names ());
           })
