(** DC — data-cube aggregation (NPB DC, reduced).

    Generates a fact table of tuples whose four dimension attributes
    are bit-packed into one integer; the main loop materializes one
    group-by view per iteration (four single-attribute views and two
    pair views), extracting keys with shift-and-mask and maintaining
    sum and max aggregates (the max is a conditional per tuple).  The
    result is an exact integer checksum over all views.

    DC has the highest shift and condition rates of the ten programs in
    Table IV — the key extraction and max-aggregate comparisons here
    are those sites. *)

let ntuples = 256
let nviews = 6
let nvals = 16 (* attribute cardinality; 4 bits each *)

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let agg_sz = Stdlib.( * ) nvals nvals in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("a0", Ty.I64);
          DScalar ("a1", Ty.I64);
          DScalar ("a2", Ty.I64);
          DScalar ("a3", Ty.I64);
          DScalar ("keyv", Ty.I64);
          DScalar ("meas", Ty.I64);
          DScalar ("s1", Ty.I64);
          DScalar ("s2", Ty.I64);
          DScalar ("pairv", Ty.I64);
          DScalar ("chk", Ty.I64);
        ]
        @ App.verification_locals;
      body =
        [
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          (* fact-table generation: pack four 4-bit attributes *)
          SRegion
            ( "dc_a",
              80,
              118,
              [
                SFor
                  ( "t",
                    i 0,
                    i ntuples,
                    [
                      SAssign
                        ("a0", to_int (f (Float.of_int nvals) * Randlc ("tran", v "amult")));
                      SAssign
                        ("a1", to_int (f (Float.of_int nvals) * Randlc ("tran", v "amult")));
                      SAssign
                        ("a2", to_int (f (Float.of_int nvals) * Randlc ("tran", v "amult")));
                      SAssign
                        ("a3", to_int (f (Float.of_int nvals) * Randlc ("tran", v "amult")));
                      SStore
                        ( "packed",
                          [ v "t" ],
                          (v "a0" << i 12)
                          ||| (v "a1" << i 8)
                          ||| (v "a2" << i 4)
                          ||| v "a3" );
                      SStore
                        ( "measure",
                          [ v "t" ],
                          to_int (f 1000.0 * Randlc ("tran", v "amult")) );
                    ] );
              ] );
          SAssign ("chk", i 0);
          (* one view per main-loop iteration *)
          SFor
            ( "view",
              i 0,
              i nviews,
              [
                SMark App.iter_mark_name;
                SRegion
                  ( "dc_b",
                    160,
                    214,
                    [
                      SFor
                        ( "g",
                          i 0,
                          i agg_sz,
                          [
                            SStore ("agg_sum", [ v "g" ], i 0);
                            SStore ("agg_max", [ v "g" ], i 0);
                          ] );
                      (* shift amounts for this view: views 0-3 project a
                         single attribute, views 4-5 project a pair *)
                      SIf
                        ( v "view" < i 4,
                          [
                            SAssign ("s1", (i 3 - v "view") * i 4);
                              SFor
                                ( "t",
                                  i 0,
                                  i ntuples,
                                  [
                                    SAssign
                                      ( "keyv",
                                        Bin
                                          ( AndB,
                                            idx1 "packed" (v "t") >> v "s1",
                                            i (Stdlib.( - ) nvals 1) ) );
                                    SAssign ("meas", idx1 "measure" (v "t"));
                                    SStore
                                      ( "agg_sum",
                                        [ v "keyv" ],
                                        idx1 "agg_sum" (v "keyv") + v "meas" );
                                    SIf
                                      ( v "meas" > idx1 "agg_max" (v "keyv"),
                                        [
                                          SStore
                                            ("agg_max", [ v "keyv" ], v "meas");
                                        ],
                                        [] );
                                  ] );
                            ],
                          [
                            (* pair views: (a0,a1) and (a2,a3) *)
                            SAssign ("s1", (v "view" - i 4) * i 8);
                              SAssign ("s2", v "s1" + i 4);
                              SFor
                                ( "t",
                                  i 0,
                                  i ntuples,
                                  [
                                    SAssign
                                      ( "pairv",
                                        Bin
                                          ( AndB,
                                            idx1 "packed" (v "t") >> v "s2",
                                            i (Stdlib.( - ) nvals 1) ) );
                                    SAssign
                                      ( "keyv",
                                        (v "pairv" * i nvals)
                                        + Bin
                                            ( AndB,
                                              idx1 "packed" (v "t") >> v "s1",
                                              i (Stdlib.( - ) nvals 1) ) );
                                    SAssign ("meas", idx1 "measure" (v "t"));
                                    SStore
                                      ( "agg_sum",
                                        [ v "keyv" ],
                                        idx1 "agg_sum" (v "keyv") + v "meas" );
                                    SIf
                                      ( v "meas" > idx1 "agg_max" (v "keyv"),
                                        [
                                          SStore
                                            ("agg_max", [ v "keyv" ], v "meas");
                                        ],
                                        [] );
                                  ] );
                            ] );
                    ] );
                SRegion
                  ( "dc_c",
                    216,
                    240,
                    [
                      SFor
                        ( "g",
                          i 0,
                          i agg_sz,
                          [
                            SAssign
                              ( "chk",
                                v "chk"
                                + Bin (Rem, idx1 "agg_sum" (v "g"), i 997)
                                + idx1 "agg_max" (v "g") );
                          ] );
                    ] );
              ] );
          SAssign ("result", to_float (v "chk"));
        ]
        @ App.verification_block ~ref_value ~tolerance:0.0 ();
    }
  in
  {
    globals =
      [
        DArr ("packed", Ty.I64, [ ntuples ]);
        DArr ("measure", Ty.I64, [ ntuples ]);
        DArr ("agg_sum", Ty.I64, [ agg_sz ]);
        DArr ("agg_max", Ty.I64, [ agg_sz ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
      ];
    funs = [ main ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "DC";
    description = "data-cube group-by aggregation (NPB DC analog)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 0.0;
    main_iterations = nviews;
    region_names = [ "dc_a"; "dc_b"; "dc_c" ];
    transform = None;
  }

(** Pure-OCaml reference checksum. *)
let reference_checksum () : float =
  let tran = ref 314159265.0 and amult = 1220703125.0 in
  let randlc () =
    let x', r = Machine.randlc_step !tran amult in
    tran := x';
    r
  in
  let packed = Array.make ntuples 0 and measure = Array.make ntuples 0 in
  for t = 0 to ntuples - 1 do
    let a0 = int_of_float (Float.of_int nvals *. randlc ()) in
    let a1 = int_of_float (Float.of_int nvals *. randlc ()) in
    let a2 = int_of_float (Float.of_int nvals *. randlc ()) in
    let a3 = int_of_float (Float.of_int nvals *. randlc ()) in
    packed.(t) <- (a0 lsl 12) lor (a1 lsl 8) lor (a2 lsl 4) lor a3;
    measure.(t) <- int_of_float (1000.0 *. randlc ())
  done;
  let chk = ref 0 in
  for view = 0 to nviews - 1 do
    let agg_sz = nvals * nvals in
    let agg_sum = Array.make agg_sz 0 and agg_max = Array.make agg_sz 0 in
    for t = 0 to ntuples - 1 do
      let keyv =
        if view < 4 then (packed.(t) lsr ((3 - view) * 4)) land (nvals - 1)
        else begin
          let s1 = (view - 4) * 8 in
          let s2 = s1 + 4 in
          (((packed.(t) lsr s2) land (nvals - 1)) * nvals)
          + ((packed.(t) lsr s1) land (nvals - 1))
        end
      in
      agg_sum.(keyv) <- agg_sum.(keyv) + measure.(t);
      if measure.(t) > agg_max.(keyv) then agg_max.(keyv) <- measure.(t)
    done;
    for g = 0 to agg_sz - 1 do
      chk := !chk + (agg_sum.(g) mod 997) + agg_max.(g)
    done
  done;
  Float.of_int !chk
