(** LULESH proxy — Lagrangian hydrodynamics element kernel.

    A scaled-down analog of the LULESH LagrangeNodal phase: a mesh of
    [ne]^3 hexahedral elements; each main-loop iteration gathers nodal
    velocities per element through the connectivity table, builds the
    [hourgam] hourglass-mode array, aggregates it into [hxx] and then
    into the hourglass forces [hgfz] — exactly the Figure-8 shape whose
    temporaries die after the element (the Dead Corrupted Locations
    pattern of Figure 7) — scatters forces, and integrates velocities,
    positions and energy.

    Crashes dominate this app's fault profile, as in the paper: the
    gather/scatter indices come from the connectivity table, so a
    corrupted index traps, and the timestep involves a square root and
    a division.

    The per-iteration energy is reported with a ["%12.6e"] print — the
    Data Truncation site the paper finds in LULESH's output phase. *)

let ne = 2 (* elements per edge; paper input "-s 3", scaled to fit *)
let nn = Stdlib.( + ) ne 1 (* nodes per edge *)
let nnode = nn * nn * nn
let nelem = ne * ne * ne
let niter = 10
let hgcoef = 0.03
let dt0 = 1e-2

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("nd", Ty.I64);
          DScalar ("el", Ty.I64);
          DScalar ("coefficient", Ty.F64);
          DScalar ("volo", Ty.F64);
          DScalar ("accel", Ty.F64);
          DScalar ("maxv", Ty.F64);
          DScalar ("dt", Ty.F64);
          DScalar ("energy", Ty.F64);
          DArr ("xdl", Ty.F64, [ 8 ]);
          DArr ("hourgam", Ty.F64, [ 8; 4 ]);
          DArr ("hxx", Ty.F64, [ 4 ]);
          DArr ("hgfz", Ty.F64, [ 8 ]);
        ]
        @ App.verification_locals;
      body =
        [
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          (* gamma hourglass base vectors (LULESH constants) *)
          SFor
            ( "g",
              i 0,
              i 4,
              [
                SFor
                  ( "ln",
                    i 0,
                    i 8,
                    [
                      (* +-1 pattern: sign = parity of bit tricks *)
                      SAssign
                        ( "nd",
                          Bin
                            ( AndB,
                              (v "ln" >> Bin (Rem, v "g", i 3)) ^| (v "ln" >> i 2),
                              i 1 ) );
                      SStore
                        ( "gamma",
                          [ v "g"; v "ln" ],
                          to_float ((i 2 * v "nd") - i 1) );
                    ] );
              ] );
          (* connectivity and nodal state *)
          SFor
            ( "ez",
              i 0,
              i ne,
              [
                SFor
                  ( "ey",
                    i 0,
                    i ne,
                    [
                      SFor
                        ( "ex",
                          i 0,
                          i ne,
                          [
                            SAssign
                              ( "el",
                                (((v "ez" * i ne) + v "ey") * i ne) + v "ex" );
                            SFor
                              ( "ln",
                                i 0,
                                i 8,
                                [
                                  SAssign
                                    ( "nd",
                                      ((v "ez" + Bin (AndB, v "ln" >> i 2, i 1))
                                       * i nn
                                      + (v "ey" + Bin (AndB, v "ln" >> i 1, i 1))
                                      )
                                      * i nn
                                      + v "ex"
                                      + Bin (AndB, v "ln", i 1) );
                                  SStore ("e2n", [ v "el"; v "ln" ], v "nd");
                                ] );
                          ] );
                    ] );
              ] );
          SFor
            ( "j",
              i 0,
              i nnode,
              [
                SStore ("xm", [ v "j" ], f 1.0 + (f 0.1 * Randlc ("tran", v "amult")));
                SStore ("zd", [ v "j" ], f 0.01 * Randlc ("tran", v "amult"));
                SStore ("z", [ v "j" ], to_float (v "j"));
              ] );
          SAssign ("dt", f dt0);
          SAssign ("energy", f 0.0);
          (* main time-stepping loop: single region l_a as in Table I *)
          SFor
            ( "it",
              i 0,
              i niter,
              [
                SMark App.iter_mark_name;
                SRegion
                  ( "l_a",
                    2652,
                    2693,
                    [
                      SFor ("j", i 0, i nnode, [ SStore ("fz", [ v "j" ], f 0.0) ]);
                      SFor
                        ( "el",
                          i 0,
                          i nelem,
                          [
                            (* gather velocities through connectivity *)
                            SFor
                              ( "ln",
                                i 0,
                                i 8,
                                [
                                  SStore
                                    ( "xdl",
                                      [ v "ln" ],
                                      idx1 "zd" (idx2 "e2n" (v "el") (v "ln"))
                                    );
                                ] );
                            SAssign
                              ("volo", f 1.0 + (f 0.01 * to_float (v "el")));
                            SAssign
                              ( "coefficient",
                                f 0.0 - (f hgcoef * f 0.01 * v "volo") );
                            (* hourgam: velocity-dependent hourglass modes *)
                            SFor
                              ( "ln",
                                i 0,
                                i 8,
                                [
                                  SFor
                                    ( "g",
                                      i 0,
                                      i 4,
                                      [
                                        SStore
                                          ( "hourgam",
                                            [ v "ln"; v "g" ],
                                            idx2 "gamma" (v "g") (v "ln")
                                            * (f 1.0
                                              + (f 0.001 * idx1 "xdl" (v "ln"))
                                              ) );
                                      ] );
                                ] );
                            (* Figure 8: aggregate hourgam x xd into hxx *)
                            SFor
                              ( "g",
                                i 0,
                                i 4,
                                [
                                  SStore
                                    ( "hxx",
                                      [ v "g" ],
                                      (idx2 "hourgam" (i 0) (v "g")
                                       * idx1 "xdl" (i 0))
                                      + (idx2 "hourgam" (i 1) (v "g")
                                        * idx1 "xdl" (i 1))
                                      + (idx2 "hourgam" (i 2) (v "g")
                                        * idx1 "xdl" (i 2))
                                      + (idx2 "hourgam" (i 3) (v "g")
                                        * idx1 "xdl" (i 3))
                                      + (idx2 "hourgam" (i 4) (v "g")
                                        * idx1 "xdl" (i 4))
                                      + (idx2 "hourgam" (i 5) (v "g")
                                        * idx1 "xdl" (i 5))
                                      + (idx2 "hourgam" (i 6) (v "g")
                                        * idx1 "xdl" (i 6))
                                      + (idx2 "hourgam" (i 7) (v "g")
                                        * idx1 "xdl" (i 7)) );
                                ] );
                            (* ... then into the hourglass forces hgfz *)
                            SFor
                              ( "ln",
                                i 0,
                                i 8,
                                [
                                  SStore
                                    ( "hgfz",
                                      [ v "ln" ],
                                      v "coefficient"
                                      * ((idx2 "hourgam" (v "ln") (i 0)
                                          * idx1 "hxx" (i 0))
                                        + (idx2 "hourgam" (v "ln") (i 1)
                                          * idx1 "hxx" (i 1))
                                        + (idx2 "hourgam" (v "ln") (i 2)
                                          * idx1 "hxx" (i 2))
                                        + (idx2 "hourgam" (v "ln") (i 3)
                                          * idx1 "hxx" (i 3))) );
                                ] );
                            (* scatter forces through connectivity *)
                            SFor
                              ( "ln",
                                i 0,
                                i 8,
                                [
                                  SAssign ("nd", idx2 "e2n" (v "el") (v "ln"));
                                  SStore
                                    ( "fz",
                                      [ v "nd" ],
                                      idx1 "fz" (v "nd") + idx1 "hgfz" (v "ln")
                                    );
                                ] );
                          ] );
                      (* integrate nodal motion and track the timestep *)
                      SAssign ("maxv", f 0.0);
                      SFor
                        ( "j",
                          i 0,
                          i nnode,
                          [
                            SAssign
                              ("accel", idx1 "fz" (v "j") / idx1 "xm" (v "j"));
                            SStore
                              ( "zd",
                                [ v "j" ],
                                idx1 "zd" (v "j") + (v "dt" * v "accel") );
                            SStore
                              ( "z",
                                [ v "j" ],
                                idx1 "z" (v "j") + (v "dt" * idx1 "zd" (v "j"))
                              );
                            SAssign
                              ("maxv", Bin (Max, v "maxv", abs_ (idx1 "zd" (v "j"))));
                          ] );
                      SAssign
                        ( "dt",
                          f dt0 / sqrt_ (f 1.0 + (v "maxv" * v "maxv")) );
                      (* kinetic energy *)
                      SAssign ("energy", f 0.0);
                      SFor
                        ( "j",
                          i 0,
                          i nnode,
                          [
                            SAssign
                              ( "energy",
                                v "energy"
                                + (f 0.5 * idx1 "xm" (v "j")
                                  * idx1 "zd" (v "j") * idx1 "zd" (v "j")) );
                          ] );
                    ] );
                (* the LULESH-style truncated progress report *)
                SPrint ("cycle %d dt=%12.6e e=%12.6e\n", [ v "it"; v "dt"; v "energy" ]);
              ] );
          SAssign ("result", v "energy");
        ]
        @ App.verification_block ~ref_value ~tolerance:1e-6 ();
    }
  in
  {
    globals =
      [
        DArr ("gamma", Ty.F64, [ 4; 8 ]);
        DArr ("e2n", Ty.I64, [ nelem; 8 ]);
        DArr ("xm", Ty.F64, [ nnode ]);
        DArr ("zd", Ty.F64, [ nnode ]);
        DArr ("z", Ty.F64, [ nnode ]);
        DArr ("fz", Ty.F64, [ nnode ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
      ];
    funs = [ main ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "LULESH";
    description = "Lagrangian hydrodynamics hourglass-force proxy (LULESH)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 1e-6;
    main_iterations = niter;
    region_names = [ "l_a" ];
    transform = None;
  }
