(** The benchmark registry: the ten programs of the paper's evaluation
    and the hardened CG variants of Use Case 1. *)

val analyzed : App.t list
(** CG, MG, KMEANS, IS, LULESH — the five programs analyzed
    region-by-region in Figures 5/6 and Table I. *)

val all : App.t list
(** All ten programs of the prediction study (Table IV). *)

val cg_variants : App.t list
(** CG and its hardened variants, in the paper's Table III row order. *)

val names : unit -> string list
(** Registered app names, registry order ([all] then [cg_variants]). *)

exception Unknown_app of {
  name : string;        (** what the caller asked for *)
  suggestions : string list;
      (** near-matches (edit distance <= 2 or a name prefix), best
          first — for "did you mean ...?" messages *)
  known : string list;  (** every valid name, sorted *)
}
(** The structured lookup failure every CLI entry point shares; a
    printer is registered, so an uncaught one still reads well. *)

val edit_distance : string -> string -> int
(** Levenshtein distance (insert/delete/substitute, unit costs). *)

val suggest : candidates:string list -> string -> string list
(** Near-matches of a misspelled name among [candidates]
    (case-insensitive edit distance <= 2, or a name prefix), best
    first.  The did-you-mean helper every CLI enum flag shares. *)

val find_opt : string -> App.t option
(** Exact match first, then case-insensitive. *)

val find : string -> App.t
(** @raise Unknown_app with suggestions when the name matches nothing
    (case-insensitively). *)
