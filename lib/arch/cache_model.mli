(** A small parameterized cache layered over the VM's flat memory:
    write-back, write-allocate, LRU within a set.  Fault-free it is
    semantically transparent (reads see what flat memory would return;
    {!flush} restores the exact memory image), so the VM only simulates
    it when a cache fault is armed.  Tag/valid/dirty metadata and data
    words are separately injectable via {!corrupt}. *)

type geometry = { sets : int; ways : int; line_words : int }

val default_geometry : geometry
(** 16 sets x 2 ways x 4 words per line = 512 words of capacity. *)

val direct_mapped : sets:int -> line_words:int -> geometry

val validate_geometry : geometry -> unit
(** @raise Invalid_argument unless all fields are positive. *)

val lines : geometry -> int
(** Total line count, [sets * ways]. *)

val geometry_to_string : geometry -> string
(** ["SETSxWAYSxWORDS"], parseable by {!geometry_of_string}. *)

val geometry_of_string : string -> (geometry, string) result

val tag_bits : geometry -> mem_words:int -> int
(** Injectable width of the Tag field: enough bits to rename a line to
    any other line of a [mem_words]-word memory within its set. *)

type field = Tag | Valid | Dirty | Word of int

type loc = { set : int; way : int; field : field }

val field_to_string : field -> string
val loc_to_string : loc -> string

type t

val create : geometry -> t
(** All lines invalid; raises [Invalid_argument] on a degenerate
    geometry. *)

val geometry : t -> geometry

val read : t -> int64 array -> int -> int64
(** [read c mem a] returns word [a] through the cache, filling (and
    possibly evicting with write-back) as needed.  [a] must be a valid
    index into [mem]. *)

val write : t -> int64 array -> int -> int64 -> unit
(** Write-allocate: misses fill the line first, then the word is
    updated in the cache and the line marked dirty. *)

val flush : t -> int64 array -> unit
(** Write every dirty line back (in set/way order) and mark it clean.
    Out-of-range writebacks — reachable only through a corrupted tag —
    are dropped. *)

val invalidate : t -> unit
(** Drop every line without writing back (rollback-recovery semantics:
    buffered stores die with the rolled-back state). *)

val corrupt : t -> loc -> f:(int64 -> int64) -> unit
(** Apply a corruption function to one metadata field or data word.
    Boolean fields keep only bit 0 of the result; tags are clamped
    non-negative. *)
