(** Named microarchitectural structures a campaign can target.

    [Reg] is the architected register file: the historical FlipTracker
    surface (destinations of dynamic instructions), kept as the default
    so every previously recorded campaign reproduces bit-for-bit.  The
    other structures come from the gpuFI-4 direction: the cache layered
    over flat memory (metadata and data lines injected separately) and
    the instruction store holding the program's binary encoding. *)

type t = Reg | Cache_tag | Cache_data | Istore

let default = Reg
let all = [ Reg; Cache_tag; Cache_data; Istore ]

let to_string = function
  | Reg -> "reg"
  | Cache_tag -> "cache-tag"
  | Cache_data -> "cache-data"
  | Istore -> "istore"

let names = List.map to_string all

let of_string s =
  match List.find_opt (fun t -> String.equal (to_string t) s) all with
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "unknown structure %S (expected %s)" s
           (String.concat ", " names))

let pp ppf t = Fmt.string ppf (to_string t)
