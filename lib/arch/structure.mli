(** Named microarchitectural structures a campaign can target. *)

type t =
  | Reg  (** the architected register file: the historical fault surface *)
  | Cache_tag  (** cache metadata: tag, valid and dirty bits *)
  | Cache_data  (** cache data lines *)
  | Istore  (** the binary-encoded instruction store *)

val default : t
(** [Reg] — keeps every previously recorded campaign reproducible. *)

val all : t list

val names : string list
(** Spellings accepted by {!of_string}, in {!all} order. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** The error message lists the accepted spellings. *)

val pp : Format.formatter -> t -> unit
