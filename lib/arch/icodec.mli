(** Compact binary encoding of the instruction store.

    Each {!Instr.t} is one 64-bit word; wide operands (immediates,
    format strings, argument-register sets) live in per-function
    constant pools behind 16-bit indices, so the injectable surface is
    exactly the fixed-width words.  Encode/decode round-trips exactly,
    and {!decode} is total: any bit pattern yields a legal instruction
    — validated against the decoding context so either backend can
    execute it without an escaping exception — or an error that
    {!mutate} materializes as the structured [Instr.Illegal] trap.
    Unused high bits of a form are don't-care bits: flips there decode
    to the same instruction. *)

type pool = {
  imms : int64 array;
  strs : string array;
  regsets : int array array;
}

type efun = { words : int64 array; pool : pool; nregs : int; code_len : int }

type t = {
  funs : efun array;
  fun_nregs : int array;
  starts : int array;
  total : int;
}

val encode : Prog.t -> t
(** Raises [Invalid_argument] only when a program exceeds the format's
    capacity (4096 registers, 2^20 instructions per function, 2^16
    pool entries) — far above anything the front end emits. *)

val total_words : t -> int
(** The injectable population: one word per static instruction. *)

val locate : t -> int -> int * int
(** Map a global word index in [0, total_words) to [(fidx, pc)]. *)

val word : t -> fidx:int -> pc:int -> int64

val decode : t -> fidx:int -> int64 -> (Instr.t, string) result
(** Total: never raises, for any 64-bit input. *)

val instr_of_word : t -> fidx:int -> int64 -> Instr.t
(** {!decode}, with errors materialized as
    [Intr (Illegal reason, [||], None)]. *)

val mutate : Prog.t -> t -> fidx:int -> pc:int -> word:int64 -> Prog.t
(** A copy of [prog] whose instruction at [(fidx, pc)] is replaced by
    the decoding of [word]; all other functions are shared. *)

val roundtrip_check : Prog.t -> unit
(** Encode then decode every word, raising [Invalid_argument] on any
    mismatch — a self-check hook for tests. *)
