(** A small parameterized cache layered over the VM's flat memory.

    Write-back, write-allocate, LRU within a set.  Fault-free the cache
    is semantically transparent — every read returns exactly what the
    flat memory would have returned, and a final {!flush} leaves the
    memory image identical to an uncached run — so the VM only
    simulates it when a cache fault is armed, and fault-free runs (and
    therefore all historical campaign counts) are untouched.

    The injectable surface is the per-line metadata (tag, valid, dirty)
    and the data words.  A flipped tag renames the line: subsequent
    accesses to the original address miss and refill from (possibly
    stale) memory, and the renamed line eventually writes back to the
    {e wrong} address — the "silently serves the wrong word" failure.
    A flipped dirty bit loses every store buffered in the line at
    eviction.  Out-of-range writebacks (reachable only through a
    corrupted tag) are dropped and out-of-range fills read zero, so
    every corrupted execution stays deterministic. *)

type geometry = { sets : int; ways : int; line_words : int }

let default_geometry = { sets = 16; ways = 2; line_words = 4 }

let direct_mapped ~sets ~line_words = { sets; ways = 1; line_words }

let validate_geometry g =
  if g.sets <= 0 || g.ways <= 0 || g.line_words <= 0 then
    invalid_arg "Cache_model: geometry fields must be positive"

let lines g = g.sets * g.ways

let geometry_to_string g =
  Printf.sprintf "%dx%dx%d" g.sets g.ways g.line_words

let geometry_of_string s =
  match String.split_on_char 'x' s with
  | [ a; b; c ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
      | Some sets, Some ways, Some line_words
        when sets > 0 && ways > 0 && line_words > 0 ->
          Ok { sets; ways; line_words }
      | _ -> Error (Printf.sprintf "bad cache geometry %S" s))
  | _ ->
      Error
        (Printf.sprintf
           "bad cache geometry %S (expected SETSxWAYSxWORDS, e.g. 16x2x4)" s)

(* Tag width for a memory of [mem_words] words: enough bits to name any
   in-range line of the memory within its set.  This is the injectable
   width of the Tag field — flips within it can rename a line to any
   other (or an out-of-range) memory line. *)
let tag_bits g ~mem_words =
  validate_geometry g;
  let mem_lines = max 1 ((max 1 mem_words + g.line_words - 1) / g.line_words) in
  let tags = max 2 ((mem_lines + g.sets - 1) / g.sets) in
  let rec bits n acc = if n <= 1 then acc else bits ((n + 1) / 2) (acc + 1) in
  bits tags 0

type field = Tag | Valid | Dirty | Word of int

type loc = { set : int; way : int; field : field }

let field_to_string = function
  | Tag -> "tag"
  | Valid -> "valid"
  | Dirty -> "dirty"
  | Word w -> Printf.sprintf "word %d" w

let loc_to_string l =
  Printf.sprintf "set %d way %d %s" l.set l.way (field_to_string l.field)

type entry = {
  mutable tag : int;
  mutable valid : bool;
  mutable dirty : bool;
  data : int64 array;
  mutable stamp : int;  (** LRU timestamp: larger = more recently used *)
}

type t = { geom : geometry; entries : entry array array; mutable tick : int }

let create geom =
  validate_geometry geom;
  {
    geom;
    entries =
      Array.init geom.sets (fun _ ->
          Array.init geom.ways (fun _ ->
              {
                tag = 0;
                valid = false;
                dirty = false;
                data = Array.make geom.line_words 0L;
                stamp = 0;
              }));
    tick = 0;
  }

let geometry t = t.geom

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let write_back g (mem : int64 array) e set =
  let base = ((e.tag * g.sets) + set) * g.line_words in
  for w = 0 to g.line_words - 1 do
    let a = base + w in
    if a >= 0 && a < Array.length mem then mem.(a) <- e.data.(w)
  done

let fill g (mem : int64 array) e set tag =
  let base = ((tag * g.sets) + set) * g.line_words in
  for w = 0 to g.line_words - 1 do
    let a = base + w in
    e.data.(w) <- (if a >= 0 && a < Array.length mem then mem.(a) else 0L)
  done;
  e.tag <- tag;
  e.valid <- true;
  e.dirty <- false

(* Find (or fill) the line holding word [a]; returns the entry and the
   word offset within the line.  [a] must be a valid memory address —
   the VM bounds-checks before reaching the cache. *)
let lookup t (mem : int64 array) a =
  let g = t.geom in
  let line = a / g.line_words in
  let off = a mod g.line_words in
  let set = line mod g.sets in
  let tag = line / g.sets in
  let ways = t.entries.(set) in
  let hit = ref None in
  for w = 0 to g.ways - 1 do
    let e = ways.(w) in
    if !hit = None && e.valid && e.tag = tag then hit := Some e
  done;
  match !hit with
  | Some e ->
      touch t e;
      (e, off)
  | None ->
      (* victim: first invalid way, else least recently used *)
      let victim = ref ways.(0) in
      let found_invalid = ref false in
      for w = 0 to g.ways - 1 do
        if (not !found_invalid) && not ways.(w).valid then begin
          victim := ways.(w);
          found_invalid := true
        end
      done;
      if not !found_invalid then
        for w = 1 to g.ways - 1 do
          if ways.(w).stamp < !victim.stamp then victim := ways.(w)
        done;
      let e = !victim in
      if e.valid && e.dirty then write_back g mem e set;
      fill g mem e set tag;
      touch t e;
      (e, off)

let read t mem a =
  let e, off = lookup t mem a in
  e.data.(off)

let write t mem a v =
  let e, off = lookup t mem a in
  e.data.(off) <- v;
  e.dirty <- true

let flush t mem =
  let g = t.geom in
  for set = 0 to g.sets - 1 do
    for w = 0 to g.ways - 1 do
      let e = t.entries.(set).(w) in
      if e.valid && e.dirty then begin
        write_back g mem e set;
        e.dirty <- false
      end
    done
  done

let invalidate t =
  Array.iter
    (Array.iter (fun e ->
         e.valid <- false;
         e.dirty <- false))
    t.entries

(* Corrupt one metadata field or data word.  [f] receives the field's
   current value as an int64 and returns the corrupted one; single-bit
   boolean fields keep only bit 0, tags are clamped non-negative so a
   corrupted tag always denotes a (possibly out-of-range) line. *)
let corrupt t (l : loc) ~(f : int64 -> int64) =
  let e = t.entries.(l.set).(l.way) in
  match l.field with
  | Tag ->
      let v = f (Int64.of_int e.tag) in
      e.tag <- Int64.to_int (Int64.logand v 0x3FFF_FFFF_FFFF_FFFFL)
  | Valid ->
      let v = f (if e.valid then 1L else 0L) in
      e.valid <- not (Int64.equal (Int64.logand v 1L) 0L)
  | Dirty ->
      let v = f (if e.dirty then 1L else 0L) in
      e.dirty <- not (Int64.equal (Int64.logand v 1L) 0L)
  | Word w -> e.data.(w) <- f e.data.(w)
