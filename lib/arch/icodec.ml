(** Compact binary encoding of the instruction store.

    Every {!Instr.t} encodes to one 64-bit word; wide operands
    (immediates, format strings, argument-register sets) live in
    per-function constant pools addressed by 16-bit indices, so the
    injectable surface is exactly the fixed-width instruction words.
    The encoding round-trips exactly, and {!decode} is {e total}: any
    64-bit pattern yields either a legal instruction — validated
    against the decoding context (register count, code length, pool
    sizes, callee arity) so both backends execute it without escaping
    exceptions — or an [Instr.Illegal] carrying the reason, never an
    exception.  Bits above a form's used fields are don't-care bits:
    flipping them decodes to the same instruction (a benign upset).

    Word layout (LSB first): bits 0-3 hold the form tag, the remaining
    fields are form-specific — register fields are 12 bits, branch
    targets 20 bits, pool indices 16 bits, binary opcodes 5 bits, unary
    opcodes 4 bits, intrinsic kinds 4 bits. *)

(* --- opcode numbering (declaration order of Op.bin / Op.un) ---------- *)

let bins =
  [|
    Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Rem; Op.And; Op.Or; Op.Xor; Op.Shl;
    Op.Lshr; Op.Ashr; Op.Fadd; Op.Fsub; Op.Fmul; Op.Fdiv; Op.Eq; Op.Ne;
    Op.Lt; Op.Le; Op.Gt; Op.Ge; Op.Feq; Op.Fne; Op.Flt; Op.Fle; Op.Fgt;
    Op.Fge; Op.Imin; Op.Imax; Op.Fmin; Op.Fmax;
  |]

let uns =
  [|
    Op.Neg; Op.Not; Op.Fneg; Op.Fabs; Op.Fsqrt; Op.Fsin; Op.Fcos; Op.Trunc32;
    Op.FloatOfInt; Op.IntOfFloat; Op.F32round;
  |]

let index_of (type a) (arr : a array) (x : a) : int =
  let rec go i = if arr.(i) = x then i else go (i + 1) in
  go 0

(* form tags *)
let t_const = 0
and t_bin = 1
and t_un = 2
and t_load = 3
and t_store = 4
and t_jmp = 5
and t_bnz = 6
and t_call = 7
and t_ret = 8
and t_intr = 9
and t_mark = 10

(* intrinsic kinds *)
let k_randlc = 0
and k_print = 1
and k_mpi_send = 2
and k_mpi_recv = 3
and k_mpi_allreduce = 4
and k_mpi_barrier = 5
and k_mpi_rank = 6
and k_mpi_size = 7
and k_illegal = 8

(* --- bit-field plumbing ---------------------------------------------- *)

let field (w : int64) ~off ~bits : int =
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical w off)
       (Int64.sub (Int64.shift_left 1L bits) 1L))

let put (acc : int64) (v : int) ~off ~bits ~what : int64 =
  if v < 0 || (bits < 63 && v >= 1 lsl bits) then
    invalid_arg
      (Printf.sprintf "Icodec.encode: %s = %d does not fit in %d bits" what v
         bits);
  Int64.logor acc (Int64.shift_left (Int64.of_int v) off)

(* --- per-function constant pools ------------------------------------- *)

type pool = { imms : int64 array; strs : string array; regsets : int array array }

type efun = { words : int64 array; pool : pool; nregs : int; code_len : int }

type t = {
  funs : efun array;
  fun_nregs : int array;  (** callee register counts, for Call validation *)
  starts : int array;  (** global word offset of each function *)
  total : int;
}

let total_words t = t.total

let locate t idx =
  if idx < 0 || idx >= t.total then invalid_arg "Icodec.locate: out of range";
  let fidx = ref 0 in
  while
    !fidx + 1 < Array.length t.starts && t.starts.(!fidx + 1) <= idx
  do
    incr fidx
  done;
  (!fidx, idx - t.starts.(!fidx))

let word t ~fidx ~pc = t.funs.(fidx).words.(pc)

(* --- encode ----------------------------------------------------------- *)

type pool_builder = {
  imm_tbl : (int64, int) Hashtbl.t;
  mutable imm_rev : int64 list;
  mutable imm_n : int;
  str_tbl : (string, int) Hashtbl.t;
  mutable str_rev : string list;
  mutable str_n : int;
  set_tbl : (int list, int) Hashtbl.t;
  mutable set_rev : int array list;
  mutable set_n : int;
}

let pool_builder () =
  {
    imm_tbl = Hashtbl.create 64;
    imm_rev = [];
    imm_n = 0;
    str_tbl = Hashtbl.create 8;
    str_rev = [];
    str_n = 0;
    set_tbl = Hashtbl.create 16;
    set_rev = [];
    set_n = 0;
  }

let intern_imm b v =
  match Hashtbl.find_opt b.imm_tbl v with
  | Some i -> i
  | None ->
      let i = b.imm_n in
      Hashtbl.add b.imm_tbl v i;
      b.imm_rev <- v :: b.imm_rev;
      b.imm_n <- i + 1;
      i

let intern_str b s =
  match Hashtbl.find_opt b.str_tbl s with
  | Some i -> i
  | None ->
      let i = b.str_n in
      Hashtbl.add b.str_tbl s i;
      b.str_rev <- s :: b.str_rev;
      b.str_n <- i + 1;
      i

let intern_set b (rs : int array) =
  let key = Array.to_list rs in
  match Hashtbl.find_opt b.set_tbl key with
  | Some i -> i
  | None ->
      let i = b.set_n in
      Hashtbl.add b.set_tbl key i;
      b.set_rev <- Array.copy rs :: b.set_rev;
      b.set_n <- i + 1;
      i

let encode_instr b (ins : Instr.t) : int64 =
  let reg = 12 and target = 20 and pidx = 16 in
  match ins with
  | Instr.Const (d, v) ->
      put
        (put (Int64.of_int t_const) d ~off:4 ~bits:reg ~what:"register")
        (intern_imm b v) ~off:16 ~bits:pidx ~what:"immediate pool index"
  | Instr.Bin (op, d, a, bb) ->
      let w = put (Int64.of_int t_bin) (index_of bins op) ~off:4 ~bits:5 ~what:"binop" in
      let w = put w d ~off:9 ~bits:reg ~what:"register" in
      let w = put w a ~off:21 ~bits:reg ~what:"register" in
      put w bb ~off:33 ~bits:reg ~what:"register"
  | Instr.Un (op, d, a) ->
      let w = put (Int64.of_int t_un) (index_of uns op) ~off:4 ~bits:4 ~what:"unop" in
      let w = put w d ~off:8 ~bits:reg ~what:"register" in
      put w a ~off:20 ~bits:reg ~what:"register"
  | Instr.Load (d, a) ->
      put
        (put (Int64.of_int t_load) d ~off:4 ~bits:reg ~what:"register")
        a ~off:16 ~bits:reg ~what:"register"
  | Instr.Store (s, a) ->
      put
        (put (Int64.of_int t_store) s ~off:4 ~bits:reg ~what:"register")
        a ~off:16 ~bits:reg ~what:"register"
  | Instr.Jmp l -> put (Int64.of_int t_jmp) l ~off:4 ~bits:target ~what:"target"
  | Instr.Bnz (c, l1, l2) ->
      let w = put (Int64.of_int t_bnz) c ~off:4 ~bits:reg ~what:"register" in
      let w = put w l1 ~off:16 ~bits:target ~what:"target" in
      put w l2 ~off:36 ~bits:target ~what:"target"
  | Instr.Call (fidx, args, ret) ->
      let w = put (Int64.of_int t_call) fidx ~off:4 ~bits:reg ~what:"callee" in
      let w = put w (intern_set b args) ~off:16 ~bits:pidx ~what:"regset pool index" in
      let w =
        put w (if ret = None then 0 else 1) ~off:32 ~bits:1 ~what:"has_ret"
      in
      put w (match ret with Some r -> r | None -> 0) ~off:33 ~bits:reg
        ~what:"register"
  | Instr.Ret r ->
      let w =
        put (Int64.of_int t_ret) (if r = None then 0 else 1) ~off:4 ~bits:1
          ~what:"has_val"
      in
      put w (match r with Some r -> r | None -> 0) ~off:5 ~bits:reg
        ~what:"register"
  | Instr.Intr (i, args, ret) ->
      let kind, str =
        match i with
        | Instr.Randlc -> (k_randlc, None)
        | Instr.Print f -> (k_print, Some f)
        | Instr.MpiSend -> (k_mpi_send, None)
        | Instr.MpiRecv -> (k_mpi_recv, None)
        | Instr.MpiAllreduceSum -> (k_mpi_allreduce, None)
        | Instr.MpiBarrier -> (k_mpi_barrier, None)
        | Instr.MpiRank -> (k_mpi_rank, None)
        | Instr.MpiSize -> (k_mpi_size, None)
        | Instr.Illegal m -> (k_illegal, Some m)
      in
      let w = put (Int64.of_int t_intr) kind ~off:4 ~bits:4 ~what:"intr kind" in
      let w = put w (intern_set b args) ~off:8 ~bits:pidx ~what:"regset pool index" in
      let w =
        put w (if ret = None then 0 else 1) ~off:24 ~bits:1 ~what:"has_ret"
      in
      let w =
        put w (match ret with Some r -> r | None -> 0) ~off:25 ~bits:reg
          ~what:"register"
      in
      put w
        (match str with Some s -> intern_str b s | None -> 0)
        ~off:37 ~bits:pidx ~what:"string pool index"
  | Instr.Mark m -> put (Int64.of_int t_mark) m ~off:4 ~bits:16 ~what:"mark"

let encode (prog : Prog.t) : t =
  let funs =
    Array.map
      (fun (f : Prog.func) ->
        if f.nregs > 1 lsl 12 then
          invalid_arg ("Icodec.encode: too many registers in " ^ f.fname);
        if Array.length f.code > 1 lsl 20 then
          invalid_arg ("Icodec.encode: function too long: " ^ f.fname);
        let b = pool_builder () in
        let words = Array.map (encode_instr b) f.code in
        {
          words;
          pool =
            {
              imms = Array.of_list (List.rev b.imm_rev);
              strs = Array.of_list (List.rev b.str_rev);
              regsets = Array.of_list (List.rev b.set_rev);
            };
          nregs = f.nregs;
          code_len = Array.length f.code;
        })
      prog.Prog.funcs
  in
  let starts = Array.make (Array.length funs) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i ef ->
      starts.(i) <- !total;
      total := !total + Array.length ef.words)
    funs;
  {
    funs;
    fun_nregs = Array.map (fun (f : Prog.func) -> f.nregs) prog.Prog.funcs;
    starts;
    total = !total;
  }

(* --- decode ----------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* Validation makes decoded instructions safe to execute on either
   backend: register indices within the function's frame, branch
   targets within [0, code_len] (= code_len halts), callee regsets no
   wider than the callee's frame, and intrinsic arities matching what
   the interpreter reads — so the only trap a corrupted-but-legal
   instruction can raise is a classified VM trap, never an escaping
   [Invalid_argument]. *)
let decode (t : t) ~(fidx : int) (w : int64) : (Instr.t, string) result =
  let ef = t.funs.(fidx) in
  let reg ~off ~what =
    let r = field w ~off ~bits:12 in
    if r >= ef.nregs then bad "%s r%d out of range (nregs %d)" what r ef.nregs;
    r
  in
  let target ~off =
    let l = field w ~off ~bits:20 in
    if l > ef.code_len then bad "branch target %d out of range" l;
    l
  in
  let opt ~flag_off ~off ~what =
    if field w ~off:flag_off ~bits:1 = 1 then Some (reg ~off ~what) else None
  in
  let regset ~off =
    let i = field w ~off ~bits:16 in
    if i >= Array.length ef.pool.regsets then bad "regset index %d out of range" i;
    let rs = ef.pool.regsets.(i) in
    Array.iter
      (fun r -> if r >= ef.nregs then bad "regset register r%d out of range" r)
      rs;
    rs
  in
  try
    let ins =
      match field w ~off:0 ~bits:4 with
      | k when k = t_const ->
          let d = reg ~off:4 ~what:"const dst" in
          let i = field w ~off:16 ~bits:16 in
          if i >= Array.length ef.pool.imms then
            bad "immediate index %d out of range" i;
          Instr.Const (d, ef.pool.imms.(i))
      | k when k = t_bin ->
          let op = field w ~off:4 ~bits:5 in
          if op >= Array.length bins then bad "binop %d out of range" op;
          Instr.Bin
            ( bins.(op),
              reg ~off:9 ~what:"bin dst",
              reg ~off:21 ~what:"bin lhs",
              reg ~off:33 ~what:"bin rhs" )
      | k when k = t_un ->
          let op = field w ~off:4 ~bits:4 in
          if op >= Array.length uns then bad "unop %d out of range" op;
          Instr.Un (uns.(op), reg ~off:8 ~what:"un dst", reg ~off:20 ~what:"un src")
      | k when k = t_load ->
          Instr.Load (reg ~off:4 ~what:"load dst", reg ~off:16 ~what:"load addr")
      | k when k = t_store ->
          Instr.Store (reg ~off:4 ~what:"store src", reg ~off:16 ~what:"store addr")
      | k when k = t_jmp -> Instr.Jmp (target ~off:4)
      | k when k = t_bnz ->
          Instr.Bnz (reg ~off:4 ~what:"bnz cond", target ~off:16, target ~off:36)
      | k when k = t_call ->
          let callee = field w ~off:4 ~bits:12 in
          if callee >= Array.length t.fun_nregs then
            bad "callee f%d out of range" callee;
          let args = regset ~off:16 in
          if Array.length args > t.fun_nregs.(callee) then
            bad "call passes %d args to f%d (%d registers)" (Array.length args)
              callee
              t.fun_nregs.(callee);
          Instr.Call (callee, args, opt ~flag_off:32 ~off:33 ~what:"call ret")
      | k when k = t_ret -> Instr.Ret (opt ~flag_off:4 ~off:5 ~what:"ret val")
      | k when k = t_intr ->
          let kind = field w ~off:4 ~bits:4 in
          let args = regset ~off:8 in
          let ret = opt ~flag_off:24 ~off:25 ~what:"intr ret" in
          let str () =
            let i = field w ~off:37 ~bits:16 in
            if i >= Array.length ef.pool.strs then
              bad "string index %d out of range" i;
            ef.pool.strs.(i)
          in
          let arity n name =
            if Array.length args <> n then
              bad "%s takes %d args, regset has %d" name n (Array.length args)
          in
          let i =
            if kind = k_randlc then begin
              arity 2 "randlc";
              Instr.Randlc
            end
            else if kind = k_print then Instr.Print (str ())
            else if kind = k_mpi_send then begin
              arity 3 "mpi_send";
              Instr.MpiSend
            end
            else if kind = k_mpi_recv then begin
              arity 2 "mpi_recv";
              Instr.MpiRecv
            end
            else if kind = k_mpi_allreduce then begin
              arity 1 "mpi_allreduce_sum";
              Instr.MpiAllreduceSum
            end
            else if kind = k_mpi_barrier then Instr.MpiBarrier
            else if kind = k_mpi_rank then Instr.MpiRank
            else if kind = k_mpi_size then Instr.MpiSize
            else if kind = k_illegal then Instr.Illegal (str ())
            else bad "intrinsic kind %d out of range" kind
          in
          Instr.Intr (i, args, ret)
      | k when k = t_mark -> Instr.Mark (field w ~off:4 ~bits:16)
      | k -> bad "form tag %d out of range" k
    in
    Ok ins
  with Bad m -> Error m

(* --- mutation ---------------------------------------------------------- *)

let instr_of_word t ~fidx (w : int64) : Instr.t =
  match decode t ~fidx w with
  | Ok i -> i
  | Error m -> Instr.Intr (Instr.Illegal m, [||], None)

let mutate (prog : Prog.t) (t : t) ~(fidx : int) ~(pc : int) ~(word : int64) :
    Prog.t =
  let ins = instr_of_word t ~fidx word in
  let funcs =
    Array.mapi
      (fun i (f : Prog.func) ->
        if i <> fidx then f
        else
          let code = Array.copy f.code in
          code.(pc) <- ins;
          { f with Prog.code })
      prog.Prog.funcs
  in
  { prog with Prog.funcs }

let roundtrip_check (prog : Prog.t) : unit =
  let t = encode prog in
  Array.iteri
    (fun fidx (f : Prog.func) ->
      Array.iteri
        (fun pc ins ->
          match decode t ~fidx t.funs.(fidx).words.(pc) with
          | Ok ins' when ins' = ins -> ()
          | Ok _ -> invalid_arg (Printf.sprintf "Icodec: %s@%d decodes differently" f.fname pc)
          | Error m -> invalid_arg (Printf.sprintf "Icodec: %s@%d: %s" f.fname pc m))
        f.code)
    prog.Prog.funcs
