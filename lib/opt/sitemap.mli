(** Composable fault-site maps from reference IR onto optimized IR.

    {b Static maps.}  Per function, an array sending each reference pc
    to its index in the rewritten body, or [-1] when the instruction
    was deleted — the harden [Splice] old->new arrays extended with
    deletion.  Maps compose, so a whole pipeline yields one map from
    the reference program to the final optimized one.

    {b Dynamic translation.}  Campaign fault sites are dynamic
    sequence numbers, so {!seq_translation} lifts a static map to the
    trace level: because every pass preserves the fault-free execution
    history of the instructions it keeps, the k-th reference execution
    of a surviving pc corresponds to the k-th optimized execution of
    its image, and translation is occurrence counting per
    (function, pc).  A reference seq whose instruction was deleted has
    no image and translates to [None] — the campaign layer turns that
    into a structured refusal ({!Campaign.Untranslatable_site}). *)

type t = (string * int array) list
(** Association list: function name -> pc map ([-1] = deleted). *)

val of_list : (string * int array) list -> t
val identity : Prog.t -> t

val map_pc : t -> fname:string -> pc:int -> int
(** New pc of a reference pc, or [-1] if deleted.  Functions absent
    from the map are treated as untouched. *)

val compose : t -> t -> t
(** [compose first then_]: the map of applying [first], then [then_]. *)

val surviving : t -> int
val deleted : t -> int

val seq_translation :
  Prog.t -> t -> ref_trace:Trace.t -> opt_trace:Trace.t -> int -> int option
(** [seq_translation ref_prog m ~ref_trace ~opt_trace] returns the
    reference-seq -> optimized-seq partial function. *)
