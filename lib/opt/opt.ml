(* Dataflow-driven IR optimizer: every rewrite is justified by an
   analysis from lib/static and the whole pipeline is gated by the
   harden Verify infrastructure plus a fault-free output-identity
   check.  Each pass returns a Sitemap so reference-level fault sites
   can be translated onto the optimized program. *)

exception Unknown_pass of {
  name : string;
  suggestions : string list;
  known : string list;
}

exception Identity_failed of { passes : string list; reason : string }

let () =
  Printexc.register_printer (function
    | Unknown_pass { name; suggestions; known } ->
        let sug =
          match suggestions with
          | [] -> ""
          | l -> Printf.sprintf " (did you mean %s?)" (String.concat ", " l)
        in
        Some
          (Printf.sprintf "unknown optimizer pass %S%s; valid passes: %s" name
             sug (String.concat ", " known))
    | Identity_failed { passes; reason } ->
        Some
          (Printf.sprintf
             "optimizer pipeline [%s] failed the fault-free identity gate: %s"
             (String.concat "; " passes) reason)
    | _ -> None)

type pass = {
  name : string;
  short : string;
  doc : string;
  run : Prog.t -> Prog.t * Pass.report * Sitemap.t;
}

(* --- per-function pass harness ----------------------------------------- *)

type fwork = {
  w_func : Prog.func;
  w_map : int array;  (* old pc -> new pc, -1 = deleted *)
  w_changes : Pass.site_change list;
  w_considered : int;
}

let id_map (f : Prog.func) = Array.init (Array.length f.Prog.code) Fun.id

let keep_work (f : Prog.func) =
  { w_func = f; w_map = id_map f; w_changes = []; w_considered = 0 }

let change (f : Prog.func) pc note : Pass.site_change =
  {
    Pass.ch_func = f.Prog.fname;
    ch_pc = pc;
    ch_line = f.Prog.lines.(pc);
    ch_region = f.Prog.regions.(pc);
    ch_note = note;
  }

let mk_pass ~name ~short ~doc (worker : Prog.t -> Prog.func -> fwork) : pass =
  let run (p : Prog.t) =
    let changes = ref [] and considered = ref 0 in
    let added = ref 0 and removed = ref 0 and regs = ref 0 in
    let maps = ref [] in
    let funcs =
      Array.map
        (fun (f : Prog.func) ->
          let r = worker p f in
          changes := !changes @ r.w_changes;
          considered := !considered + r.w_considered;
          let del =
            Array.fold_left (fun a x -> if x < 0 then a + 1 else a) 0 r.w_map
          in
          removed := !removed + del;
          added :=
            !added
            + Array.length r.w_func.Prog.code
            - (Array.length f.Prog.code - del);
          regs := !regs + (r.w_func.Prog.nregs - f.Prog.nregs);
          maps := (f.Prog.fname, r.w_map) :: !maps;
          r.w_func)
        p.Prog.funcs
    in
    let rep =
      {
        Pass.pass_name = name;
        sites_considered = !considered;
        sites_changed = List.length !changes;
        instrs_added = !added;
        instrs_removed = !removed;
        regs_added = !regs;
        changes = !changes;
        protective = [];
      }
    in
    ({ p with Prog.funcs }, rep, Sitemap.of_list (List.rev !maps))
  in
  { name; short; doc; run }

(* compose two per-function 1-round maps *)
let compose_fmap (a : int array) (b : int array) : int array =
  Array.map (fun p -> if p < 0 then -1 else b.(p)) a

(* --- constant folding (sparse constant propagation) --------------------- *)

let fold_round (f : Prog.func) :
    (Prog.func * int array * Pass.site_change list) option * int =
  let cp = Constprop.compute f in
  let n = Array.length f.Prog.code in
  let repl = Array.make n None in
  let considered = ref 0 and changes = ref [] in
  Array.iteri
    (fun pc ins ->
      match ins with
      | Instr.Bin (op, d, a, b) -> (
          incr considered;
          match (Constprop.const_of cp ~pc a, Constprop.const_of cp ~pc b) with
          | Some x, Some y -> (
              match Op.eval_bin op x y with
              | k ->
                  repl.(pc) <- Some [ Instr.Const (d, k) ];
                  changes :=
                    change f pc
                      (Printf.sprintf "folded %s to 0x%Lx"
                         (Op.bin_to_string op) k)
                    :: !changes
              | exception Op.Trap _ -> ())
          | _ -> ())
      | Instr.Un (op, d, a) -> (
          incr considered;
          match Constprop.const_of cp ~pc a with
          | Some x -> (
              match Op.eval_un op x with
              | k ->
                  repl.(pc) <- Some [ Instr.Const (d, k) ];
                  changes :=
                    change f pc
                      (Printf.sprintf "folded %s to 0x%Lx" (Op.un_to_string op)
                         k)
                    :: !changes
              | exception Op.Trap _ -> ())
          | None -> ())
      | Instr.Bnz (c, l1, l2) -> (
          incr considered;
          match Constprop.const_of cp ~pc c with
          | Some k ->
              let l = if Int64.equal k 0L then l2 else l1 in
              repl.(pc) <- Some [ Instr.Jmp l ];
              changes :=
                change f pc (Printf.sprintf "branch decided, always to %d" l)
                :: !changes
          | None -> ())
      | _ -> ())
    f.Prog.code;
  if !changes = [] then (None, !considered)
  else
    let f', map = Rewrite.apply ~replace:(fun pc -> repl.(pc)) f in
    (Some (f', map, List.rev !changes), !considered)

let fold_func (_ : Prog.t) (f : Prog.func) : fwork =
  let rec go f map changes considered rounds =
    match fold_round f with
    | (None, c) ->
        {
          w_func = f;
          w_map = map;
          w_changes = changes;
          w_considered = max considered c;
        }
    | (Some (f', m, ch), c) ->
        let map = compose_fmap map m in
        if rounds <= 1 then
          {
            w_func = f';
            w_map = map;
            w_changes = changes @ ch;
            w_considered = max considered c;
          }
        else go f' map (changes @ ch) (max considered c) (rounds - 1)
  in
  if Array.length f.Prog.code = 0 then keep_work f else go f (id_map f) [] 0 3

let fold_pass =
  mk_pass ~name:"constfold" ~short:"fold"
    ~doc:
      "fold operations whose operands the constant lattice proves \
       constant; decide branches on constant conditions (never folds a \
       trapping operation)"
    fold_func

(* --- algebraic simplification / strength reduction ---------------------- *)

(* Integer identities only: float arithmetic identities (x+0.0, x*1.0)
   are not bit-exact in general (-0.0, NaN), and the identity gate
   would rightly reject them. *)

let copy_of d s = Instr.Bin (Op.Or, d, s, s)

let simp_func (_ : Prog.t) (f : Prog.func) : fwork =
  if Array.length f.Prog.code = 0 then keep_work f
  else begin
    let cp = Constprop.compute f in
    let n = Array.length f.Prog.code in
    let repl = Array.make n None in
    let considered = ref 0 and changes = ref [] in
    let put pc ins note =
      if ins <> f.Prog.code.(pc) then begin
        repl.(pc) <- Some [ ins ];
        changes := change f pc note :: !changes
      end
    in
    Array.iteri
      (fun pc ins ->
        match ins with
        | Instr.Bin (op, d, a, b) -> (
            incr considered;
            let ca = Constprop.const_of cp ~pc a in
            let cb = Constprop.const_of cp ~pc b in
            let is v c = match c with Some k -> Int64.equal k v | None -> false in
            match op with
            | Op.Add ->
                if is 0L cb then put pc (copy_of d a) "x + 0"
                else if is 0L ca then put pc (copy_of d b) "0 + x"
            | Op.Sub -> if is 0L cb then put pc (copy_of d a) "x - 0"
            | Op.Mul ->
                if is 0L ca || is 0L cb then
                  put pc (Instr.Const (d, 0L)) "x * 0"
                else if is 1L cb then put pc (copy_of d a) "x * 1"
                else if is 1L ca then put pc (copy_of d b) "1 * x"
            | Op.Div -> if is 1L cb then put pc (copy_of d a) "x / 1"
            | Op.Rem -> if is 1L cb then put pc (Instr.Const (d, 0L)) "x rem 1"
            | Op.Or ->
                if a = b then ()
                else if is 0L cb then put pc (copy_of d a) "x | 0"
                else if is 0L ca then put pc (copy_of d b) "0 | x"
            | Op.And ->
                if a = b then put pc (copy_of d a) "x & x"
                else if is (-1L) cb then put pc (copy_of d a) "x & -1"
                else if is (-1L) ca then put pc (copy_of d b) "-1 & x"
                else if is 0L ca || is 0L cb then
                  put pc (Instr.Const (d, 0L)) "x & 0"
            | Op.Xor ->
                if a = b then put pc (Instr.Const (d, 0L)) "x ^ x"
                else if is 0L cb then put pc (copy_of d a) "x ^ 0"
                else if is 0L ca then put pc (copy_of d b) "0 ^ x"
            | Op.Shl | Op.Lshr | Op.Ashr ->
                if is 0L cb then put pc (copy_of d a) "x shift 0"
            | Op.Imin | Op.Imax ->
                if a = b then put pc (copy_of d a) "min/max(x, x)"
            | Op.Eq | Op.Le | Op.Ge ->
                if a = b then put pc (Instr.Const (d, 1L)) "x cmp x"
            | Op.Ne | Op.Lt | Op.Gt ->
                if a = b then put pc (Instr.Const (d, 0L)) "x cmp x"
            | _ -> ())
        | _ -> ())
      f.Prog.code;
    if !changes = [] then keep_work f
    else
      let f', map = Rewrite.apply ~replace:(fun pc -> repl.(pc)) f in
      {
        w_func = f';
        w_map = map;
        w_changes = List.rev !changes;
        w_considered = !considered;
      }
  end

let simp_pass =
  mk_pass ~name:"simplify" ~short:"simp"
    ~doc:
      "algebraic identities and strength reduction on integer operations \
       (x+0, x*1, x^x, shift-by-0, ...), justified by the constant \
       lattice; float identities are excluded for bit-exactness"
    simp_func

(* --- block-local common-subexpression elimination ------------------------ *)

(* Straight-line value numbering: inside one basic block, a pure
   [Bin]/[Un] whose (op, operands) were already computed into a still-
   valid register becomes a copy of that register.  Validity is killed
   by any redefinition of an operand or of the holding register, so the
   justification is purely block-local reaching.  If the reused
   occurrence could trap, the first occurrence with the same operands
   already trapped first, so fault-free behavior is unchanged.  The
   copies left behind feed copy propagation and die in dce. *)

let cse_func (_ : Prog.t) (f : Prog.func) : fwork =
  let n = Array.length f.Prog.code in
  if n = 0 then keep_work f
  else begin
    let cfg = Cfg.build f in
    let repl = Array.make n None in
    let considered = ref 0 and changes = ref [] in
    Array.iter
      (fun (b : Cfg.block) ->
        (* ((tag, a, b), holder): dead once holder or an operand is
           redefined; blocks are short, a list is fine *)
        let tbl = ref [] in
        let kill r =
          tbl :=
            List.filter
              (fun ((_, a, b'), v) -> v <> r && a <> r && b' <> r)
              !tbl
        in
        let reuse pc key d add_self =
          incr considered;
          match List.assoc_opt key !tbl with
          | Some r when r <> d ->
              repl.(pc) <- Some [ copy_of d r ];
              changes :=
                change f pc
                  (Printf.sprintf "recomputation reuses r%d (local cse)" r)
                :: !changes;
              kill d
          | Some _ | None ->
              kill d;
              if add_self then tbl := (key, d) :: !tbl
        in
        for pc = b.Cfg.first to b.Cfg.last do
          match f.Prog.code.(pc) with
          | Instr.Bin (op, d, a, b') ->
              reuse pc
                ("b" ^ Op.bin_to_string op, a, b')
                d
                (d <> a && d <> b')
          | Instr.Un (op, d, a) ->
              reuse pc ("u" ^ Op.un_to_string op, a, -1) d (d <> a)
          | ins -> List.iter kill (Cfg.defs ins)
        done)
      cfg.Cfg.blocks;
    if !changes = [] then keep_work f
    else
      let f', map = Rewrite.apply ~replace:(fun pc -> repl.(pc)) f in
      {
        w_func = f';
        w_map = map;
        w_changes = List.rev !changes;
        w_considered = !considered;
      }
  end

let cse_pass =
  mk_pass ~name:"local-cse" ~short:"cse"
    ~doc:
      "block-local value numbering: a pure operation recomputing an \
       expression a still-valid register already holds becomes a copy of \
       that register (straight-line reaching inside one block)"
    cse_func

(* --- redundant-load elimination ----------------------------------------- *)

let rle_func (p : Prog.t) (f : Prog.func) : fwork =
  if Array.length f.Prog.code = 0 then keep_work f
  else begin
    let rd = Reaching.compute f in
    let cp = Constprop.compute f in
    let al = Alias.make p f ~rd ~cp in
    let av = Avail.compute ~rd ~store_range:(Alias.store_range al) f in
    let n = Array.length f.Prog.code in
    let repl = Array.make n None in
    let considered = ref 0 and changes = ref [] in
    Array.iteri
      (fun pc ins ->
        match ins with
        | Instr.Load (d, areg) -> (
            match Reaching.const_addr rd ~pc areg with
            | Some a -> (
                incr considered;
                match Avail.holder_of av ~pc ~addr:a with
                | Some r ->
                    repl.(pc) <- Some [ copy_of d r ];
                    changes :=
                      change f pc
                        (Printf.sprintf "load of word %d forwarded from r%d" a
                           r)
                      :: !changes
                | None -> ())
            | None -> ())
        | _ -> ())
      f.Prog.code;
    if !changes = [] then keep_work f
    else
      let f', map = Rewrite.apply ~replace:(fun pc -> repl.(pc)) f in
      {
        w_func = f';
        w_map = map;
        w_changes = List.rev !changes;
        w_considered = !considered;
      }
  end

let rle_pass =
  mk_pass ~name:"redundant-load-elim" ~short:"rle"
    ~doc:
      "replace a load of a constant-addressed word with a register copy \
       when the available-loads analysis proves a register already holds \
       that word (includes store-to-load forwarding)"
    rle_func

(* --- copy propagation ---------------------------------------------------- *)

let is_copy code pc =
  match code.(pc) with
  | Instr.Bin ((Op.Or | Op.And), d, s, s') when s = s' && d <> s -> Some (d, s)
  | _ -> None

let subst_uses sub (ins : Instr.t) : Instr.t =
  match ins with
  | Instr.Bin (op, d, a, b) -> Instr.Bin (op, d, sub a, sub b)
  | Instr.Un (op, d, a) -> Instr.Un (op, d, sub a)
  | Instr.Load (d, a) -> Instr.Load (d, sub a)
  | Instr.Store (s, a) -> Instr.Store (sub s, sub a)
  | Instr.Bnz (c, l1, l2) -> Instr.Bnz (sub c, l1, l2)
  | Instr.Call (fi, args, ret) -> Instr.Call (fi, Array.map sub args, ret)
  | Instr.Ret (Some r) -> Instr.Ret (Some (sub r))
  | Instr.Intr (i, args, ret) -> Instr.Intr (i, Array.map sub args, ret)
  | Instr.Const _ | Instr.Jmp _ | Instr.Ret None | Instr.Mark _ -> ins

let copy_func (_ : Prog.t) (f : Prog.func) : fwork =
  if Array.length f.Prog.code = 0 then keep_work f
  else begin
    let cfg = Cfg.build f in
    let cps = Avail.compute_copies ~cfg f ~is_copy:(is_copy f.Prog.code) in
    let n = Array.length f.Prog.code in
    let repl = Array.make n None in
    let considered = ref 0 and changes = ref [] in
    Array.iteri
      (fun pc ins ->
        if Cfg.uses ins <> [] then begin
          incr considered;
          let sub r =
            match Avail.copy_source cps ~pc r with Some s -> s | None -> r
          in
          let ins' = subst_uses sub ins in
          if ins' <> ins then begin
            repl.(pc) <- Some [ ins' ];
            changes := change f pc "copy-propagated operands" :: !changes
          end
        end)
      f.Prog.code;
    if !changes = [] then keep_work f
    else
      let f', map = Rewrite.apply ~replace:(fun pc -> repl.(pc)) f in
      {
        w_func = f';
        w_map = map;
        w_changes = List.rev !changes;
        w_considered = !considered;
      }
  end

let copy_pass =
  mk_pass ~name:"copyprop" ~short:"copy"
    ~doc:
      "rewrite operand reads to the copy source when the reaching-\
       definitions-based available-copies analysis proves the registers \
       equal on every path"
    copy_func

(* --- loop-invariant constant hoisting ------------------------------------ *)

let hoist_round (p : Prog.t) (f : Prog.func) :
    (Prog.func * int array * Pass.site_change list) option * int =
  let cfg = Cfg.build f in
  let loops = Cfg.natural_loops cfg in
  if loops = [] then (None, 0)
  else begin
    let rd = Reaching.compute f in
    let cp = Constprop.compute f in
    let al = Alias.make p f ~rd ~cp in
    let idoms = Cfg.idoms cfg in
    let n = Array.length f.Prog.code in
    (* uses of each register, precomputed: reg -> use pcs *)
    let use_sites = Array.make f.Prog.nregs [] in
    Array.iteri
      (fun pc ins ->
        List.iter
          (fun r -> use_sites.(r) <- pc :: use_sites.(r))
          (Cfg.uses ins))
      f.Prog.code;
    let considered = ref 0 and changes = ref [] in
    let claimed = Array.make n false in
    let fresh = ref f.Prog.nregs in
    let subst : (int * Instr.reg, Instr.reg) Hashtbl.t = Hashtbl.create 64 in
    let insertions = ref [] in
    (* innermost loops first, so a constant escapes one level per round *)
    let loop_size (l : Cfg.loop) =
      Array.fold_left (fun a m -> if m then a + 1 else a) 0 l.Cfg.members
    in
    let loops =
      List.sort (fun a b -> compare (loop_size a) (loop_size b)) loops
    in
    List.iter
      (fun (l : Cfg.loop) ->
        let hb = cfg.Cfg.blocks.(l.Cfg.header) in
        let members_pc pc = l.Cfg.members.(cfg.Cfg.block_of.(pc)) in
        (* the header must be the unique loop entry (reducible) and every
           in-loop edge into it must be an explicit branch, so that the
           preheader code can be skipped exactly by the back edges *)
        let viable =
          Array.for_all
            (fun b ->
              (not l.Cfg.members.(b))
              || Cfg.dominates idoms l.Cfg.header b)
            (Array.init (Array.length l.Cfg.members) Fun.id)
          && List.for_all
               (fun p ->
                 (not l.Cfg.members.(p))
                 || Cfg.is_terminator f.Prog.code.(cfg.Cfg.blocks.(p).Cfg.last))
               hb.Cfg.preds
        in
        if viable then begin
          (* memory effects of the loop, for load-invariance: loads are
             hoistable only when nothing in the loop can write their
             word — exact for constant addresses, object extents from
             the alias analysis for computed ones *)
          let mem_opaque = ref false in
          let stored_addrs = ref [] in
          let stored_extents = ref [] in
          for pc = 0 to n - 1 do
            if members_pc pc then
              match f.Prog.code.(pc) with
              | Instr.Call _ -> mem_opaque := true
              | Instr.Intr (Instr.Randlc, args, _) -> (
                  match
                    if Array.length args = 0 then None
                    else Reaching.const_addr rd ~pc args.(0)
                  with
                  | Some a -> stored_addrs := a :: !stored_addrs
                  | None -> mem_opaque := true)
              | Instr.Intr _ -> () (* print/mpi touch registers only *)
              | Instr.Store (_, areg) -> (
                  match Reaching.const_addr rd ~pc areg with
                  | Some a -> stored_addrs := a :: !stored_addrs
                  | None -> (
                      match Alias.extent_of al ~pc areg with
                      | Some e -> stored_extents := e :: !stored_extents
                      | None -> mem_opaque := true))
              | _ -> ()
          done;
          let loop_may_write a =
            List.mem a !stored_addrs
            || List.exists (fun e -> Alias.touches e a) !stored_extents
          in
          (* can all uses of r be redirected from its def at pc alone? *)
          let sole_def pc r =
            let uses =
              List.filter
                (fun u -> List.mem pc (Reaching.defs_of rd ~pc:u r))
                use_sites.(r)
            in
            if
              uses <> []
              && List.for_all
                   (fun u -> Reaching.defs_of rd ~pc:u r = [ pc ])
                   uses
            then Some uses
            else None
          in
          (* candidates: in-loop Const defs, and loads of words the loop
             provably never writes, that uniquely reach all their uses *)
          let by_const : (int64, Instr.reg) Hashtbl.t = Hashtbl.create 8 in
          let by_load : (int, Instr.reg) Hashtbl.t = Hashtbl.create 8 in
          let code = ref [] in
          for pc = 0 to n - 1 do
            if members_pc pc && not claimed.(pc) then
              match f.Prog.code.(pc) with
              | Instr.Const (r, k) -> (
                  incr considered;
                  match sole_def pc r with
                  | Some uses ->
                      claimed.(pc) <- true;
                      let r' =
                        match Hashtbl.find_opt by_const k with
                        | Some r' -> r'
                        | None ->
                            let r' = !fresh in
                            incr fresh;
                            Hashtbl.add by_const k r';
                            code := Instr.Const (r', k) :: !code;
                            r'
                      in
                      List.iter
                        (fun u -> Hashtbl.replace subst (u, r) r')
                        uses;
                      changes :=
                        change f pc
                          (Printf.sprintf
                             "const 0x%Lx hoisted to preheader of block %d" k
                             l.Cfg.header)
                        :: !changes
                  | None -> ())
              | Instr.Load (r, areg) when not !mem_opaque -> (
                  match Reaching.const_addr rd ~pc areg with
                  | Some a when not (loop_may_write a) -> (
                      incr considered;
                      match sole_def pc r with
                      | Some uses ->
                          claimed.(pc) <- true;
                          let r' =
                            match Hashtbl.find_opt by_load a with
                            | Some r' -> r'
                            | None ->
                                let ra = !fresh in
                                let r' = !fresh + 1 in
                                fresh := !fresh + 2;
                                Hashtbl.add by_load a r';
                                code :=
                                  Instr.Load (r', ra)
                                  :: Instr.Const (ra, Int64.of_int a)
                                  :: !code;
                                r'
                          in
                          List.iter
                            (fun u -> Hashtbl.replace subst (u, r) r')
                            uses;
                          changes :=
                            change f pc
                              (Printf.sprintf
                                 "loop-invariant load of word %d hoisted to \
                                  preheader of block %d"
                                 a l.Cfg.header)
                            :: !changes
                      | None -> ())
                  | _ -> ())
              | _ -> ()
          done;
          if !code <> [] then
            insertions :=
              Rewrite.before
                ~via:(fun src -> not (members_pc src))
                hb.Cfg.first (List.rev !code)
              :: !insertions
        end)
      loops;
    if !changes = [] then (None, !considered)
    else begin
      let repl pc =
        let ins = f.Prog.code.(pc) in
        let sub r =
          match Hashtbl.find_opt subst (pc, r) with Some r' -> r' | None -> r
        in
        let ins' = subst_uses sub ins in
        if ins' <> ins then Some [ ins' ] else None
      in
      let f', map =
        Rewrite.apply ~nregs:!fresh ~insertions:(List.rev !insertions)
          ~replace:repl f
      in
      (Some (f', map, List.rev !changes), !considered)
    end
  end

let hoist_func (p : Prog.t) (f : Prog.func) : fwork =
  let rec go f map changes considered rounds =
    match hoist_round p f with
    | (None, c) ->
        {
          w_func = f;
          w_map = map;
          w_changes = changes;
          w_considered = max considered c;
        }
    | (Some (f', m, ch), c) ->
        let map = compose_fmap map m in
        if rounds <= 1 then
          {
            w_func = f';
            w_map = map;
            w_changes = changes @ ch;
            w_considered = max considered c;
          }
        else go f' map (changes @ ch) (max considered c) (rounds - 1)
  in
  if Array.length f.Prog.code = 0 then keep_work f else go f (id_map f) [] 0 6

let hoist_pass =
  mk_pass ~name:"loop-hoist" ~short:"hoist"
    ~doc:
      "hoist loop-invariant constant materializations to a freshly built \
       preheader, justified by natural-loop detection, dominators and \
       unique reaching definitions (the originals die and fall to dce)"
    hoist_func

(* --- scalar promotion (register-caching of loop scalars) ----------------- *)

(* A scalar word read inside a loop is cached in a fresh register
   loaded once in the preheader; in-loop loads of the word become
   register copies and in-loop stores refresh the cache.  Soundness
   needs exactly one fact: nothing else in the loop can write the word
   — constant-addressed stores are grouped by word, computed-address
   stores are bounded by the alias analysis's object extents, randlc
   writes only its (resolved) state word, and loops containing calls
   are skipped.

   Stores come in two modes.  By default they keep writing memory
   while refreshing the cache, so memory stays current at every point
   and nothing else needs proving.  When the loop additionally proves
   that nothing in it can READ the word through a computed address,
   never returns from inside, and every exit lands on a block whose
   only fall-through predecessor is the loop itself, the store is
   sunk: in-loop stores become pure cache updates and a single
   write-back is inserted on every exit edge, entered exactly by the
   loop's own branches (Rewrite.before's via).  Memory is stale for
   the word only while the loop runs, when provably nobody looks. *)

let promote_round (p : Prog.t) (f : Prog.func) :
    (Prog.func * int array * Pass.site_change list) option * int =
  let cfg = Cfg.build f in
  let loops = Cfg.natural_loops cfg in
  if loops = [] then (None, 0)
  else begin
    let rd = Reaching.compute f in
    let cp = Constprop.compute f in
    let al = Alias.make p f ~rd ~cp in
    let idoms = Cfg.idoms cfg in
    let n = Array.length f.Prog.code in
    let considered = ref 0 and changes = ref [] in
    let fresh = ref f.Prog.nregs in
    let repl = Array.make n None in
    (* write-backs must come before preheaders at a shared anchor, so a
       branch leaving one loop syncs before the next loop's preheader
       reloads the word *)
    let pre_inserts = ref [] and sync_inserts = ref [] in
    (* each word promoted at most once per round, innermost loop wins;
       the next round can promote the preheader load one level out *)
    let promoted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    (* anchor pc -> member sets already writing back there: stacked
       write-backs at one anchor are only sound for nested loops, where
       falling through an inner sync into an outer one is exactly the
       order in which both caches are valid *)
    let sync_claims : (int, bool array list) Hashtbl.t = Hashtbl.create 8 in
    let subset a b =
      let ok = ref true in
      Array.iteri (fun i m -> if m && not b.(i) then ok := false) a;
      !ok
    in
    let loop_size (l : Cfg.loop) =
      Array.fold_left (fun a m -> if m then a + 1 else a) 0 l.Cfg.members
    in
    let loops =
      List.sort (fun a b -> compare (loop_size a) (loop_size b)) loops
    in
    List.iter
      (fun (l : Cfg.loop) ->
        let hb = cfg.Cfg.blocks.(l.Cfg.header) in
        let members_pc pc = l.Cfg.members.(cfg.Cfg.block_of.(pc)) in
        let viable =
          Array.for_all
            (fun b ->
              (not l.Cfg.members.(b)) || Cfg.dominates idoms l.Cfg.header b)
            (Array.init (Array.length l.Cfg.members) Fun.id)
          && List.for_all
               (fun pr ->
                 (not l.Cfg.members.(pr))
                 || Cfg.is_terminator f.Prog.code.(cfg.Cfg.blocks.(pr).Cfg.last))
               hb.Cfg.preds
        in
        if viable then begin
          (* memory effects of the loop *)
          let opaque = ref false in
          let has_ret = ref false in
          let randlc_words = ref [] in
          let store_extents = ref [] and load_extents = ref [] in
          let dyn_load_unknown = ref false in
          let loads_by_word : (int, (int * Instr.reg) list) Hashtbl.t =
            Hashtbl.create 8
          in
          let stores_by_word : (int, (int * Instr.reg * Instr.reg) list)
              Hashtbl.t =
            Hashtbl.create 8
          in
          for pc = 0 to n - 1 do
            if members_pc pc then
              match f.Prog.code.(pc) with
              | Instr.Call _ -> opaque := true
              | Instr.Ret _ -> has_ret := true
              | Instr.Intr (Instr.Randlc, args, _) -> (
                  match
                    if Array.length args = 0 then None
                    else Reaching.const_addr rd ~pc args.(0)
                  with
                  | Some a -> randlc_words := a :: !randlc_words
                  | None -> opaque := true)
              | Instr.Intr _ -> ()
              | Instr.Store (s, areg) -> (
                  match Reaching.const_addr rd ~pc areg with
                  | Some a ->
                      Hashtbl.replace stores_by_word a
                        ((pc, s, areg)
                        :: Option.value ~default:[]
                             (Hashtbl.find_opt stores_by_word a))
                  | None -> (
                      match Alias.extent_of al ~pc areg with
                      | Some e -> store_extents := e :: !store_extents
                      | None -> opaque := true))
              | Instr.Load (d, areg) -> (
                  match Reaching.const_addr rd ~pc areg with
                  | Some a ->
                      Hashtbl.replace loads_by_word a
                        ((pc, d)
                        :: Option.value ~default:[]
                             (Hashtbl.find_opt loads_by_word a))
                  | None -> (
                      match Alias.extent_of al ~pc areg with
                      | Some e -> load_extents := e :: !load_extents
                      | None -> dyn_load_unknown := true))
              | _ -> ()
          done;
          (* the exit anchors: first pc of every non-member successor
             block.  Write-backs there are enterable only by the loop's
             own branches, so any fall-through predecessor must itself
             be a member *)
          let exit_anchors = ref [] in
          let anchors_ok = ref true in
          Array.iteri
            (fun b (blk : Cfg.block) ->
              if l.Cfg.members.(b) then
                List.iter
                  (fun s ->
                    if not l.Cfg.members.(s) then begin
                      let a = cfg.Cfg.blocks.(s).Cfg.first in
                      if not (List.mem a !exit_anchors) then begin
                        exit_anchors := a :: !exit_anchors;
                        if
                          a > 0
                          && (not (Cfg.is_terminator f.Prog.code.(a - 1)))
                          && not (members_pc (a - 1))
                        then anchors_ok := false
                      end
                    end)
                  blk.Cfg.succs)
            cfg.Cfg.blocks;
          let claims_ok =
            List.for_all
              (fun a ->
                match Hashtbl.find_opt sync_claims a with
                | None -> true
                | Some sets ->
                    List.for_all
                      (fun c ->
                        subset c l.Cfg.members || subset l.Cfg.members c)
                      sets)
              !exit_anchors
          in
          let loop_sinkable =
            (not !has_ret) && (not !dyn_load_unknown) && !anchors_ok
            && claims_ok
          in
          if not !opaque then
            (* candidates: words the loop reads through a constant
               address that neither a computed-address store's object
               extent nor a randlc state update can touch; constant-
               addressed stores are fine — they refresh the cache *)
            Hashtbl.iter
              (fun w loads ->
                incr considered;
                if
                  (not (Hashtbl.mem promoted w))
                  && (not (List.mem w !randlc_words))
                  && not
                       (List.exists
                          (fun e -> Alias.touches e w)
                          !store_extents)
                then begin
                  Hashtbl.add promoted w ();
                  let ra = !fresh and rc = !fresh + 1 in
                  fresh := !fresh + 2;
                  pre_inserts :=
                    Rewrite.before
                      ~via:(fun src -> not (members_pc src))
                      hb.Cfg.first
                      [
                        Instr.Const (ra, Int64.of_int w); Instr.Load (rc, ra);
                      ]
                    :: !pre_inserts;
                  List.iter
                    (fun (pc, d) ->
                      repl.(pc) <- Some [ copy_of d rc ];
                      changes :=
                        change f pc
                          (Printf.sprintf
                             "load of word %d served from loop cache r%d" w rc)
                        :: !changes)
                    loads;
                  let stores =
                    Option.value ~default:[]
                      (Hashtbl.find_opt stores_by_word w)
                  in
                  let sink =
                    loop_sinkable && stores <> []
                    && not
                         (List.exists
                            (fun e -> Alias.touches e w)
                            !load_extents)
                  in
                  if sink then begin
                    List.iter
                      (fun a ->
                        Hashtbl.replace sync_claims a
                          (l.Cfg.members
                          :: Option.value ~default:[]
                               (Hashtbl.find_opt sync_claims a));
                        sync_inserts :=
                          Rewrite.before ~via:members_pc a
                            [ Instr.Store (rc, ra) ]
                          :: !sync_inserts)
                      !exit_anchors;
                    List.iter
                      (fun (pc, s, _) ->
                        repl.(pc) <- Some [ copy_of rc s ];
                        changes :=
                          change f pc
                            (Printf.sprintf
                               "store to word %d sunk to loop exits via cache \
                                r%d"
                               w rc)
                          :: !changes)
                      stores
                  end
                  else
                    List.iter
                      (fun (pc, s, areg) ->
                        (* store first so the fault-site map lands on the
                           memory write, then refresh the cache *)
                        repl.(pc) <-
                          Some [ Instr.Store (s, areg); copy_of rc s ];
                        changes :=
                          change f pc
                            (Printf.sprintf
                               "store to word %d also refreshes loop cache \
                                r%d"
                               w rc)
                          :: !changes)
                      stores
                end)
              loads_by_word
        end)
      loops;
    if !changes = [] then (None, !considered)
    else
      let f', map =
        Rewrite.apply ~nregs:!fresh
          ~insertions:(List.rev !sync_inserts @ List.rev !pre_inserts)
          ~replace:(fun pc -> repl.(pc)) f
      in
      (Some (f', map, List.rev !changes), !considered)
  end

let promote_func (p : Prog.t) (f : Prog.func) : fwork =
  let rec go f map changes considered rounds =
    match promote_round p f with
    | (None, c) ->
        {
          w_func = f;
          w_map = map;
          w_changes = changes;
          w_considered = max considered c;
        }
    | (Some (f', m, ch), c) ->
        let map = compose_fmap map m in
        if rounds <= 1 then
          {
            w_func = f';
            w_map = map;
            w_changes = changes @ ch;
            w_considered = max considered c;
          }
        else go f' map (changes @ ch) (max considered c) (rounds - 1)
  in
  if Array.length f.Prog.code = 0 then keep_work f else go f (id_map f) [] 0 4

let promote_pass =
  mk_pass ~name:"scalar-promote" ~short:"promote"
    ~doc:
      "cache loop scalars in registers: a word read in a loop is loaded \
       once in the preheader, loads become copies and stores refresh the \
       cache while still writing memory; justified by dominators, \
       reaching definitions and the object-extent alias analysis"
    promote_func

(* --- copy coalescing ------------------------------------------------------ *)

(* The complement of copy propagation for copies it cannot touch: a
   pure definition `s <- op ...` whose value is consumed ONLY by a
   same-block copy `d <- s` is re-targeted to define d directly and
   the copy is deleted.  Promotion and hoisting leave exactly this
   shape behind for loop-carried registers (`r' <- add r k; r <- r'`),
   where propagation fails because the equality does not hold on the
   loop entry edge.  Justified by reaching definitions: no other use
   reads the def's value, the copy is the def's unique consumer, and d
   is neither read nor written between the two. *)

let coalesce_round (f : Prog.func) :
    (Prog.func * int array * Pass.site_change list) option * int =
  let n = Array.length f.Prog.code in
  if n = 0 then (None, 0)
  else begin
    let rd = Reaching.compute f in
    let cfg = Reaching.cfg rd in
    let code = f.Prog.code in
    let use_sites = Array.make f.Prog.nregs [] in
    Array.iteri
      (fun pc ins ->
        List.iter (fun r -> use_sites.(r) <- pc :: use_sites.(r)) (Cfg.uses ins))
      code;
    let considered = ref 0 and changes = ref [] in
    let repl = Array.make n None in
    let touched = Array.make n false in
    let retarget d ins =
      match ins with
      | Instr.Const (_, k) -> Some (Instr.Const (d, k))
      | Instr.Bin (op, _, a, b) -> Some (Instr.Bin (op, d, a, b))
      | Instr.Un (op, _, a) -> Some (Instr.Un (op, d, a))
      | Instr.Load (_, a) -> Some (Instr.Load (d, a))
      | _ -> None
    in
    Array.iteri
      (fun c ins ->
        match ins with
        | Instr.Bin ((Op.Or | Op.And), d, s, s') when s = s' && d <> s -> (
            incr considered;
            match Reaching.unique_def rd ~pc:c s with
            | Some dd
              when dd >= 0 && dd < c
                   && cfg.Cfg.block_of.(dd) = cfg.Cfg.block_of.(c)
                   && (not touched.(dd))
                   && not touched.(c) -> (
                match retarget d code.(dd) with
                | Some ins' when List.hd (Cfg.defs code.(dd)) = s ->
                    (* d untouched strictly between def and copy, and the
                       def's value reaches no use but the copy *)
                    let clear = ref true in
                    for pc = dd + 1 to c - 1 do
                      let i = code.(pc) in
                      if
                        List.mem d (Cfg.defs i)
                        || List.mem d (Cfg.uses i)
                      then clear := false
                    done;
                    if
                      !clear
                      && List.for_all
                           (fun u ->
                             u = c
                             || not (List.mem dd (Reaching.defs_of rd ~pc:u s)))
                           use_sites.(s)
                    then begin
                      touched.(dd) <- true;
                      touched.(c) <- true;
                      repl.(dd) <- Some [ ins' ];
                      repl.(c) <- Some [];
                      changes :=
                        change f c
                          (Printf.sprintf
                             "copy absorbed into its defining instruction at \
                              pc %d"
                             dd)
                        :: !changes
                    end
                | Some _ | None -> ())
            | Some _ | None -> ())
        | _ -> ())
      code;
    if !changes = [] then (None, !considered)
    else
      let f', map = Rewrite.apply ~replace:(fun pc -> repl.(pc)) f in
      (Some (f', map, List.rev !changes), !considered)
  end

let coalesce_func (_ : Prog.t) (f : Prog.func) : fwork =
  let rec go f map changes considered rounds =
    match coalesce_round f with
    | (None, c) ->
        {
          w_func = f;
          w_map = map;
          w_changes = changes;
          w_considered = max considered c;
        }
    | (Some (f', m, ch), c) ->
        let map = compose_fmap map m in
        if rounds <= 1 then
          {
            w_func = f';
            w_map = map;
            w_changes = changes @ ch;
            w_considered = max considered c;
          }
        else go f' map (changes @ ch) (max considered c) (rounds - 1)
  in
  if Array.length f.Prog.code = 0 then keep_work f else go f (id_map f) [] 0 4

let coalesce_pass =
  mk_pass ~name:"coalesce" ~short:"coal"
    ~doc:
      "absorb a register copy into its defining instruction when reaching \
       definitions prove the copy is the definition's only consumer and \
       the target register is untouched in between — the loop-carried \
       shape promotion and hoisting leave behind"
    coalesce_func

(* --- dead-code elimination ----------------------------------------------- *)

let dce_round (f : Prog.func) :
    (Prog.func * int array * Pass.site_change list) option * int =
  let cfg = Cfg.build f in
  let lv = Liveness.compute ~cfg f in
  let rd = Reaching.compute f in
  let ml = Liveness.compute_mem rd f in
  let reach = Cfg.reachable_pcs cfg in
  let n = Array.length f.Prog.code in
  let del = Array.make n false in
  let considered = ref 0 and changes = ref [] in
  Array.iteri
    (fun pc ins ->
      (* the final instruction is kept unconditionally so a function
         body never empties and falloff structure is preserved *)
      if (not reach.(pc)) && pc < n - 1 then begin
        del.(pc) <- true;
        changes := change f pc "unreachable" :: !changes
      end
      else
        match ins with
        | Instr.Jmp l when l = pc + 1 && pc < n - 1 ->
            incr considered;
            del.(pc) <- true;
            changes := change f pc "jump to next instruction" :: !changes
        | Instr.Bin ((Op.Or | Op.And), d, a, b) when d = a && a = b ->
            incr considered;
            del.(pc) <- true;
            changes := change f pc "no-op self copy" :: !changes
        | Instr.Const (d, _)
        | Instr.Bin (_, d, _, _)
        | Instr.Un (_, d, _)
        | Instr.Load (d, _) ->
            incr considered;
            if not (Liveness.is_live_after lv ~pc d) then begin
              del.(pc) <- true;
              changes := change f pc "dead definition" :: !changes
            end
        | Instr.Store (_, areg) -> (
            match Reaching.const_addr rd ~pc areg with
            | Some a ->
                incr considered;
                if not (Liveness.word_live_after ml ~pc a) then begin
                  del.(pc) <- true;
                  changes :=
                    change f pc (Printf.sprintf "dead store to word %d" a)
                    :: !changes
                end
            | None -> ())
        | _ -> ())
    f.Prog.code;
  if !changes = [] then (None, !considered)
  else
    let f', map =
      Rewrite.apply ~replace:(fun pc -> if del.(pc) then Some [] else None) f
    in
    (Some (f', map, List.rev !changes), !considered)

let dce_func (_ : Prog.t) (f : Prog.func) : fwork =
  let rec go f map changes considered rounds =
    match dce_round f with
    | (None, c) ->
        {
          w_func = f;
          w_map = map;
          w_changes = changes;
          w_considered = max considered c;
        }
    | (Some (f', m, ch), c) ->
        let map = compose_fmap map m in
        if rounds <= 1 then
          {
            w_func = f';
            w_map = map;
            w_changes = changes @ ch;
            w_considered = max considered c;
          }
        else go f' map (changes @ ch) (max considered c) (rounds - 1)
  in
  if Array.length f.Prog.code = 0 then keep_work f else go f (id_map f) [] 0 8

let dce_pass =
  mk_pass ~name:"deadcode" ~short:"dce"
    ~doc:
      "delete unreachable instructions, definitions the liveness analysis \
       proves dead, no-op self copies, and stores to constant-addressed \
       words that are overwritten before any possible read"
    dce_func

(* --- registry ------------------------------------------------------------ *)

let all : pass list =
  [
    fold_pass;
    simp_pass;
    cse_pass;
    rle_pass;
    copy_pass;
    promote_pass;
    hoist_pass;
    coalesce_pass;
    dce_pass;
  ]

let names () = List.map (fun p -> p.name) all

let find (name : string) : pass option =
  let name = String.lowercase_ascii (String.trim name) in
  List.find_opt (fun p -> p.name = name || p.short = name) all

let find_exn (name : string) : pass =
  match find name with
  | Some p -> p
  | None ->
      let candidates =
        List.concat_map (fun p -> [ p.name; p.short ]) all
      in
      raise
        (Unknown_pass
           {
             name;
             suggestions = Registry.suggest ~candidates name;
             known = names ();
           })

let canonical (passes : pass list) : pass list =
  List.filter (fun p -> List.exists (fun q -> q.name = p.name) passes) all

let parse_spec (spec : string) : (pass list, string) result =
  match
    let spec = String.trim spec in
    if spec = "" || spec = "all" then all
    else
      String.split_on_char ',' spec
      |> List.concat_map (String.split_on_char '+')
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map find_exn
      |> canonical
  with
  | passes -> Ok passes
  | exception (Unknown_pass _ as e) -> Error (Printexc.to_string e)

let spec_names (passes : pass list) : string =
  if List.length passes = List.length all then "opt"
  else "opt:" ^ String.concat "+" (List.map (fun p -> p.short) passes)

(* --- pipeline ------------------------------------------------------------ *)

let merge_reports (rs : Pass.report list) : Pass.report list =
  let order = ref [] in
  let tbl : (string, Pass.report) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Pass.report) ->
      match Hashtbl.find_opt tbl r.Pass.pass_name with
      | None ->
          order := r.Pass.pass_name :: !order;
          Hashtbl.add tbl r.Pass.pass_name r
      | Some prev ->
          Hashtbl.replace tbl r.Pass.pass_name
            {
              r with
              Pass.sites_considered =
                prev.Pass.sites_considered + r.Pass.sites_considered;
              sites_changed = prev.Pass.sites_changed + r.Pass.sites_changed;
              instrs_added = prev.Pass.instrs_added + r.Pass.instrs_added;
              instrs_removed =
                prev.Pass.instrs_removed + r.Pass.instrs_removed;
              regs_added = prev.Pass.regs_added + r.Pass.regs_added;
              changes = prev.Pass.changes @ r.Pass.changes;
            })
    rs;
  List.rev_map (Hashtbl.find tbl) !order

let optimize ?(rounds = 4) (passes : pass list) (p : Prog.t) :
    Prog.t * Pass.report list * Sitemap.t =
  let run_round prog map =
    List.fold_left
      (fun (prog, reps, map, changed) pass ->
        let prog', rep, m = pass.run prog in
        Prog.validate prog';
        ( prog',
          rep :: reps,
          Sitemap.compose map m,
          changed || rep.Pass.sites_changed > 0 ))
      (prog, [], map, false) passes
  in
  let rec go prog map reps rounds =
    let prog', rev_reps, map', changed = run_round prog map in
    let reps = reps @ List.rev rev_reps in
    if changed && rounds > 1 then go prog' map' reps (rounds - 1)
    else (prog', map', reps)
  in
  let prog', map, reps = go p (Sitemap.identity p) [] (max 1 rounds) in
  (* the harden Verify gate: no optimized program ships broken IR *)
  let diags = Verify.errors (Verify.verify prog') in
  if diags <> [] then
    raise
      (Pass.Verify_failed { passes = List.map (fun p -> p.name) passes; diags });
  (prog', merge_reports reps, map)

let check_identity ~(passes : string list) ~(base : Prog.t) ~(opt : Prog.t) :
    unit =
  let fail reason = raise (Identity_failed { passes; reason }) in
  let rb = Machine.run_plain base in
  let ro = Machine.run_plain opt in
  (match (rb.Machine.outcome, ro.Machine.outcome) with
  | Machine.Finished, Machine.Finished -> ()
  | _ -> fail "a fault-free run did not finish");
  if not (String.equal rb.Machine.output ro.Machine.output) then
    fail "fault-free output differs";
  if Array.length rb.Machine.mem <> Array.length ro.Machine.mem then
    fail "memory sizes differ";
  Array.iteri
    (fun i v ->
      if not (Int64.equal v ro.Machine.mem.(i)) then
        fail (Printf.sprintf "final memory differs at word %d" i))
    rb.Machine.mem;
  if rb.Machine.iterations <> ro.Machine.iterations then
    fail "main-loop iteration counts differ"

let transform ?rounds (passes : pass list) (p : Prog.t) : Prog.t =
  let p', _, _ = optimize ?rounds passes p in
  p'

let transform_checked ?rounds (passes : pass list) (p : Prog.t) : Prog.t =
  let p', _, _ = optimize ?rounds passes p in
  check_identity ~passes:(List.map (fun x -> x.name) passes) ~base:p ~opt:p';
  p'

(* --- app wiring ---------------------------------------------------------- *)

let app_variant ?rounds ?(passes = all) (base : App.t) : App.t =
  {
    base with
    App.name = base.App.name ^ "@" ^ spec_names passes;
    description =
      base.App.description ^ ", optimized (" ^ spec_names passes ^ ")";
    transform = Some (transform_checked ?rounds passes);
  }

type optimized = {
  o_base : App.t;
  o_passes : pass list;
  o_prog : Prog.t;
  o_reports : Pass.report list;
  o_sitemap : Sitemap.t;
}

let optimize_app ?rounds ?(passes = all) (base : App.t) : optimized =
  let prog = App.program base in
  let prog', reports, sitemap = optimize ?rounds passes prog in
  check_identity
    ~passes:(List.map (fun x -> x.name) passes)
    ~base:prog ~opt:prog';
  {
    o_base = base;
    o_passes = passes;
    o_prog = prog';
    o_reports = reports;
    o_sitemap = sitemap;
  }

let reference_seq_translation (o : optimized) : int -> int option =
  let _, ref_trace = App.trace o.o_base in
  let ro, opt_trace =
    Machine.run_traced ~iter_mark:(App.iter_mark o.o_base) o.o_prog
  in
  (match ro.Machine.outcome with
  | Machine.Finished -> ()
  | _ ->
      raise
        (Identity_failed
           {
             passes = List.map (fun x -> x.name) o.o_passes;
             reason = "traced optimized run did not finish";
           }));
  Sitemap.seq_translation (App.program o.o_base) o.o_sitemap ~ref_trace
    ~opt_trace

let reference_campaign ?(cfg = Campaign.default_config)
    ?(exec = Campaign.default_exec) (o : optimized) : Campaign.run_report =
  let _, ref_trace = App.trace o.o_base in
  let ro, opt_trace =
    Machine.run_traced ~iter_mark:(App.iter_mark o.o_base) o.o_prog
  in
  (match ro.Machine.outcome with
  | Machine.Finished -> ()
  | _ ->
      raise
        (Identity_failed
           {
             passes = List.map (fun x -> x.name) o.o_passes;
             reason = "traced optimized run did not finish";
           }));
  let target = Campaign.whole_program_target (App.program o.o_base) ref_trace in
  let map_seq =
    Sitemap.seq_translation (App.program o.o_base) o.o_sitemap ~ref_trace
      ~opt_trace
  in
  let target = Campaign.translate_target ~map_seq target in
  let cfg = { cfg with Campaign.site_level = Campaign.Reference } in
  Campaign.run_report o.o_prog
    ~verify:(App.verify o.o_base)
    ~clean_instructions:ro.Machine.instructions ~cfg ~exec target

let pp_reports (ppf : Format.formatter) (reps : Pass.report list) : unit =
  List.iter (fun r -> Format.fprintf ppf "%a@." Pass.pp_report r) reps

let static_instruction_count (p : Prog.t) : int =
  Array.fold_left
    (fun a (f : Prog.func) -> a + Array.length f.Prog.code)
    0 p.Prog.funcs
