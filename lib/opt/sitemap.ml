(* Composable fault-site maps from reference IR onto optimized IR; see
   the mli.  Static maps extend the harden Splice old->new pc arrays
   with -1 for deleted instructions; the dynamic translation lifts them
   to sequence numbers by occurrence counting, which is exact because
   every optimizer pass preserves the fault-free control-flow history
   of the instructions it keeps. *)

type t = (string * int array) list

let of_list (l : (string * int array) list) : t = l

let identity (p : Prog.t) : t =
  Array.to_list
    (Array.map
       (fun (f : Prog.func) ->
         (f.Prog.fname, Array.init (Array.length f.Prog.code) Fun.id))
       p.Prog.funcs)

let map_pc (m : t) ~(fname : string) ~(pc : int) : int =
  match List.assoc_opt fname m with
  | Some a when pc >= 0 && pc < Array.length a -> a.(pc)
  | Some _ -> -1
  | None -> pc

(** [compose first then_]: the map of applying [first], then [then_].
    A pc deleted by either stage is deleted by the composition. *)
let compose (first : t) (then_ : t) : t =
  List.map
    (fun (fname, ma) ->
      ( fname,
        Array.map
          (fun p1 -> if p1 < 0 then -1 else map_pc then_ ~fname ~pc:p1)
          ma ))
    first

let surviving (m : t) : int =
  List.fold_left
    (fun acc (_, a) ->
      Array.fold_left (fun acc p -> if p >= 0 then acc + 1 else acc) acc a)
    0 m

let deleted (m : t) : int =
  List.fold_left
    (fun acc (_, a) ->
      Array.fold_left (fun acc p -> if p < 0 then acc + 1 else acc) acc a)
    0 m

(* --- dynamic translation ------------------------------------------------ *)

(* The k-th fault-free execution of a surviving static instruction in
   the reference program corresponds to the k-th execution of its image
   in the optimized program: the passes neither add nor remove
   executions of kept instructions, and inserted instructions are new
   pcs outside the map's image.  So translation is occurrence counting
   per (function, pc). *)

let seq_translation (ref_prog : Prog.t) (m : t) ~(ref_trace : Trace.t)
    ~(opt_trace : Trace.t) : int -> int option =
  (* occurrence -> seq arrays for the optimized trace, two passes to
     avoid building per-event list cells on long traces *)
  let counts : (int * int, int ref) Hashtbl.t = Hashtbl.create 4096 in
  Trace.iter
    (fun (e : Trace.event) ->
      let k = (e.Trace.fidx, e.Trace.pc) in
      match Hashtbl.find_opt counts k with
      | Some c -> incr c
      | None -> Hashtbl.add counts k (ref 1))
    opt_trace;
  let opt_occ : (int * int, int array) Hashtbl.t =
    Hashtbl.create (Hashtbl.length counts)
  in
  Hashtbl.iter (fun k c -> Hashtbl.add opt_occ k (Array.make !c 0)) counts;
  let fill : (int * int, int ref) Hashtbl.t =
    Hashtbl.create (Hashtbl.length counts)
  in
  Trace.iter
    (fun (e : Trace.event) ->
      let k = (e.Trace.fidx, e.Trace.pc) in
      let i =
        match Hashtbl.find_opt fill k with
        | Some i -> i
        | None ->
            let i = ref 0 in
            Hashtbl.add fill k i;
            i
      in
      (Hashtbl.find opt_occ k).(!i) <- e.Trace.seq;
      incr i)
    opt_trace;
  (* per-function static maps, indexed by fidx *)
  let fmaps =
    Array.map
      (fun (f : Prog.func) -> List.assoc_opt f.Prog.fname m)
      ref_prog.Prog.funcs
  in
  (* translate every reference event by its occurrence index *)
  let max_seq = ref (-1) in
  Trace.iter
    (fun (e : Trace.event) -> if e.Trace.seq > !max_seq then max_seq := e.Trace.seq)
    ref_trace;
  let trans = Array.make (!max_seq + 2) (-1) in
  let occ : (int * int, int ref) Hashtbl.t = Hashtbl.create 4096 in
  Trace.iter
    (fun (e : Trace.event) ->
      let k = (e.Trace.fidx, e.Trace.pc) in
      let c =
        match Hashtbl.find_opt occ k with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.add occ k c;
            c
      in
      let i = !c in
      incr c;
      let pc' =
        match fmaps.(e.Trace.fidx) with
        | None -> e.Trace.pc
        | Some a when e.Trace.pc >= 0 && e.Trace.pc < Array.length a ->
            a.(e.Trace.pc)
        | Some _ -> -1
      in
      if pc' >= 0 then
        match Hashtbl.find_opt opt_occ (e.Trace.fidx, pc') with
        | Some arr when i < Array.length arr ->
            trans.(e.Trace.seq) <- arr.(i)
        | Some _ | None -> ())
    ref_trace;
  fun s ->
    if s >= 0 && s <= !max_seq && trans.(s) >= 0 then Some trans.(s) else None
