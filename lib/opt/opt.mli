(** The dataflow-driven IR optimizer.

    Every pass is justified by an analysis from [lib/static] — the
    constant lattice ({!Constprop}), available loads/copies ({!Avail}),
    reaching definitions, liveness, and dominator/natural-loop
    structure ({!Cfg}) — and the pipeline is gated twice: the harden
    {!Verify} gate rejects broken IR ({!Pass.Verify_failed}), and a
    fault-free output-identity gate rejects any rewrite that changes
    the reference behavior ({!Identity_failed}).

    Every pass also returns a {!Sitemap} from its input pcs to its
    output pcs, so fault-injection campaigns can either sample sites
    natively on the optimized program or sample at the declared
    unoptimized reference level and translate
    ({!Campaign.translate_target}); pipelines that delete instructions
    have partial maps and reference-level campaigns over them refuse
    with {!Campaign.Untranslatable_site}. *)

exception Unknown_pass of {
  name : string;
  suggestions : string list;  (** did-you-mean, via {!Registry.suggest} *)
  known : string list;        (** the valid canonical pass names *)
}

exception Identity_failed of { passes : string list; reason : string }
(** The optimized program's fault-free run diverged from the
    reference: outcome, printed output, final memory image, or
    main-loop iteration count. *)

type pass = {
  name : string;   (** canonical name, e.g. ["constfold"] *)
  short : string;  (** terse alias, e.g. ["fold"] *)
  doc : string;
  run : Prog.t -> Prog.t * Pass.report * Sitemap.t;
}

val fold_pass : pass
val simp_pass : pass
val cse_pass : pass
val rle_pass : pass
val copy_pass : pass
val promote_pass : pass
val hoist_pass : pass
val coalesce_pass : pass
val dce_pass : pass

val all : pass list
(** Canonical order: constfold, simplify, local-cse,
    redundant-load-elim, copyprop, scalar-promote, loop-hoist,
    coalesce, deadcode. *)

val names : unit -> string list

val find : string -> pass option
(** By canonical name or short alias, case-insensitive. *)

val find_exn : string -> pass
(** @raise Unknown_pass with suggestions when nothing matches. *)

val parse_spec : string -> (pass list, string) result
(** [""] and ["all"] mean every pass; otherwise a [','] or ['+']
    separated list of names/shorts, deduplicated into canonical
    order. *)

val spec_names : pass list -> string
(** ["opt"] for the full pipeline, ["opt:fold+dce"]-style otherwise —
    the suffix {!app_variant} appends to an app name. *)

val optimize :
  ?rounds:int -> pass list -> Prog.t -> Prog.t * Pass.report list * Sitemap.t
(** Run the passes in order, iterating the whole list (up to [rounds],
    default 4) until a round changes nothing.  [Prog.validate] runs
    after every pass and the {!Verify} gate over the final program;
    reports are merged per pass across rounds and the returned
    {!Sitemap} composes every rewrite.
    @raise Pass.Verify_failed on any error-severity diagnostic. *)

val check_identity : passes:string list -> base:Prog.t -> opt:Prog.t -> unit
(** Fault-free identity gate: run both programs and require identical
    outcome, output, final memory and iteration count.
    @raise Identity_failed otherwise. *)

val transform : ?rounds:int -> pass list -> Prog.t -> Prog.t
(** {!optimize}, keeping only the program (static gates only). *)

val transform_checked : ?rounds:int -> pass list -> Prog.t -> Prog.t
(** {!optimize} followed by {!check_identity} against the input. *)

val app_variant : ?rounds:int -> ?passes:pass list -> App.t -> App.t
(** The optimized variant of an app: named [NAME@opt] (or
    [NAME@opt:SPEC] for a subset), with [transform] set to
    {!transform_checked} so baking itself enforces both gates. *)

(** An optimization of a specific app with its sitemap kept, for
    reference-level campaigns. *)
type optimized = {
  o_base : App.t;
  o_passes : pass list;
  o_prog : Prog.t;
  o_reports : Pass.report list;
  o_sitemap : Sitemap.t;
}

val optimize_app : ?rounds:int -> ?passes:pass list -> App.t -> optimized
(** @raise Identity_failed / Pass.Verify_failed as the gates demand. *)

val reference_seq_translation : optimized -> int -> int option
(** The dynamic reference-seq -> optimized-seq translation, from the
    app's fault-free trace and a traced run of the optimized program. *)

val reference_campaign :
  ?cfg:Campaign.config -> ?exec:Campaign.exec -> optimized -> Campaign.run_report
(** Whole-program campaign whose sites are sampled from the
    {e reference} trace and translated onto the optimized program; the
    config is stamped [site_level = Reference] so its journal tag can
    never mix with native-level runs.
    @raise Campaign.Untranslatable_site when the pipeline deleted a
    sampled site's instruction. *)

val pp_reports : Format.formatter -> Pass.report list -> unit

val static_instruction_count : Prog.t -> int
