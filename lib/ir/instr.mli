(** IR instructions: three-address code over per-activation virtual
    registers, with control flow as absolute indices into the enclosing
    function's instruction array. *)

type reg = int

type intr =
  | Randlc
      (** NPB linear congruential generator; args = [state_addr; a].
          Reads and updates the state word in memory, returns a double
          in (0,1).  Deterministic, so faulty and fault-free runs stay
          aligned. *)
  | Print of string
      (** C-style formatted print into the VM output buffer.  Formats
          with limited precision (["%12.6e"]) are Data Truncation
          sites. *)
  | MpiSend            (** args = [dest_rank; tag; value] *)
  | MpiRecv            (** args = [src_rank; tag]; returns the value *)
  | MpiAllreduceSum    (** args = [value]; returns the global sum *)
  | MpiBarrier
  | MpiRank
  | MpiSize
  | Illegal of string
      (** an undecodable instruction word (instruction-store bit flip);
          executing it traps in both backends *)

type t =
  | Const of reg * int64
  | Bin of Op.bin * reg * reg * reg  (** dst <- op a b *)
  | Un of Op.un * reg * reg
  | Load of reg * reg                (** dst <- mem[addr] *)
  | Store of reg * reg               (** [Store (src, addr)] *)
  | Jmp of int
  | Bnz of reg * int * int           (** if cond <> 0 goto l1 else l2 *)
  | Call of int * reg array * reg option
  | Ret of reg option
  | Intr of intr * reg array * reg option
  | Mark of int                      (** trace marker (e.g. iteration) *)

val intr_to_string : intr -> string
val pp : Format.formatter -> t -> unit
