(** Opcodes and their bit-accurate semantics.

    Evaluation is total except for the arithmetic traps ({!Trap}),
    which the VM converts into the Crashed outcome of the
    fault-manifestation model. *)

type bin =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv
  | Eq | Ne | Lt | Le | Gt | Ge
  | Feq | Fne | Flt | Fle | Fgt | Fge
  | Imin | Imax | Fmin | Fmax

type un =
  | Neg
  | Not
  | Fneg
  | Fabs
  | Fsqrt
  | Fsin
  | Fcos
  | Trunc32     (** keep the low 32 bits, sign-extended: the C [(int)]
                    cast on a wider integer *)
  | FloatOfInt
  | IntOfFloat  (** C truncation semantics; traps on NaN and overflow *)
  | F32round    (** round through binary32 and back: computing in
                    [float] instead of [double] *)

exception Trap of string
(** Undefined arithmetic: division by zero, sqrt of a negative value,
    int-of-NaN.  Reported by the VM as a crash. *)

val bin_is_float : bin -> bool
val bin_is_compare : bin -> bool
val bin_is_shift : bin -> bool

val un_is_truncation : un -> bool
(** The narrowing conversions that host the Data Truncation pattern. *)

val eval_bin : bin -> Value.t -> Value.t -> Value.t
(** Shift amounts are taken modulo 64, like hardware.
    @raise Trap on integer division/remainder by zero. *)

val eval_un : un -> Value.t -> Value.t
(** @raise Trap on sqrt of a negative value or int-of-NaN/overflow. *)

val bin_fn : bin -> Value.t -> Value.t -> Value.t
(** [bin_fn op] dispatches on [op] once and returns a closure that is
    bit-identical to [eval_bin op] per application (same traps).  Used
    by the compiled execution backend to resolve operators at
    closure-compilation time. *)

val un_fn : un -> Value.t -> Value.t
(** One-time-dispatch counterpart of {!eval_un}. *)

val bin_to_string : bin -> string
val un_to_string : un -> string
val pp_bin : Format.formatter -> bin -> unit
val pp_un : Format.formatter -> un -> unit
