(** IR instructions.

    A function body is a flat array of instructions; control flow uses
    absolute indices into that array (the compiler resolves labels).
    Registers are per-activation virtual registers, freely reusable —
    the IR is three-address code, not SSA, which mirrors the way the
    paper treats machine state (a register is a location whose value
    changes over time). *)

type reg = int

(** Intrinsic operations.  They are the only instructions with effects
    outside the register file / memory words. *)
type intr =
  | Randlc
      (** NPB linear congruential generator: args = [state_addr; a];
          reads and updates the state word in memory, returns a double
          in (0,1).  Deterministic, so faulty and fault-free runs stay
          aligned. *)
  | Print of string
      (** C-style format print: the formatted text is appended to the
          VM output buffer.  Formats with limited precision (["%12.6e"])
          are where the Data Truncation pattern lives. *)
  | MpiSend   (** args = [dest_rank; tag; value] *)
  | MpiRecv   (** args = [src_rank; tag]; returns the received value *)
  | MpiAllreduceSum  (** args = [value]; returns the sum across ranks *)
  | MpiBarrier
  | MpiRank   (** returns the executing rank *)
  | MpiSize   (** returns the number of ranks *)
  | Illegal of string
      (** an undecodable instruction word: produced by instruction-store
          bit flips whose corrupted encoding no longer denotes a legal
          instruction.  Executing it traps (the structured
          illegal-instruction fault), in both backends. *)

type t =
  | Const of reg * int64        (** dst <- immediate bit pattern *)
  | Bin of Op.bin * reg * reg * reg  (** dst <- op a b *)
  | Un of Op.un * reg * reg     (** dst <- op a *)
  | Load of reg * reg           (** dst <- mem[addr] *)
  | Store of reg * reg          (** mem[addr] <- src; [Store (src, addr)] *)
  | Jmp of int
  | Bnz of reg * int * int      (** if cond <> 0 then goto l1 else l2 *)
  | Call of int * reg array * reg option
      (** call function [fidx] with argument registers; optional result *)
  | Ret of reg option
  | Intr of intr * reg array * reg option
  | Mark of int                 (** trace marker (e.g. main-loop iteration) *)

let intr_to_string = function
  | Randlc -> "randlc"
  | Print f -> Printf.sprintf "print %S" f
  | MpiSend -> "mpi_send"
  | MpiRecv -> "mpi_recv"
  | MpiAllreduceSum -> "mpi_allreduce_sum"
  | MpiBarrier -> "mpi_barrier"
  | MpiRank -> "mpi_rank"
  | MpiSize -> "mpi_size"
  | Illegal m -> Printf.sprintf "illegal %S" m

let pp ppf = function
  | Const (d, v) -> Fmt.pf ppf "r%d <- const 0x%Lx" d v
  | Bin (op, d, a, b) -> Fmt.pf ppf "r%d <- %a r%d r%d" d Op.pp_bin op a b
  | Un (op, d, a) -> Fmt.pf ppf "r%d <- %a r%d" d Op.pp_un op a
  | Load (d, a) -> Fmt.pf ppf "r%d <- load [r%d]" d a
  | Store (s, a) -> Fmt.pf ppf "store r%d -> [r%d]" s a
  | Jmp l -> Fmt.pf ppf "jmp %d" l
  | Bnz (c, l1, l2) -> Fmt.pf ppf "bnz r%d %d %d" c l1 l2
  | Call (f, args, ret) ->
      Fmt.pf ppf "%acall f%d(%a)"
        (fun ppf -> function
          | Some r -> Fmt.pf ppf "r%d <- " r
          | None -> ())
        ret f
        Fmt.(array ~sep:comma (fun ppf r -> Fmt.pf ppf "r%d" r))
        args
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some r) -> Fmt.pf ppf "ret r%d" r
  | Intr (i, args, ret) ->
      Fmt.pf ppf "%a%s(%a)"
        (fun ppf -> function
          | Some r -> Fmt.pf ppf "r%d <- " r
          | None -> ())
        ret (intr_to_string i)
        Fmt.(array ~sep:comma (fun ppf r -> Fmt.pf ppf "r%d" r))
        args
  | Mark m -> Fmt.pf ppf "mark %d" m
