(** Opcodes and their bit-accurate semantics.

    The evaluation functions are total except for the arithmetic traps
    ([Division_by_zero]), which the VM converts into the Crashed outcome
    of the fault-manifestation model. *)

type bin =
  (* integer arithmetic *)
  | Add | Sub | Mul | Div | Rem
  (* bitwise *)
  | And | Or | Xor | Shl | Lshr | Ashr
  (* float arithmetic *)
  | Fadd | Fsub | Fmul | Fdiv
  (* integer comparisons, result is 0/1 as i64 *)
  | Eq | Ne | Lt | Le | Gt | Ge
  (* float comparisons *)
  | Feq | Fne | Flt | Fle | Fgt | Fge
  (* min/max *)
  | Imin | Imax | Fmin | Fmax

type un =
  | Neg        (** integer negation *)
  | Not        (** bitwise complement *)
  | Fneg
  | Fabs
  | Fsqrt
  | Fsin
  | Fcos
  | Trunc32    (** keep the low 32 bits, sign-extended: the C [(int)] cast
                   applied to an integer wider than 32 bits *)
  | FloatOfInt (** signed i64 -> f64 *)
  | IntOfFloat (** f64 -> i64, C truncation semantics; traps on NaN/overflow *)
  | F32round   (** round f64 through binary32 and back: models computing in
                   [float] instead of [double] *)

exception Trap of string
(** Raised on undefined arithmetic; the VM reports it as a crash. *)

let bin_is_float = function
  | Fadd | Fsub | Fmul | Fdiv | Feq | Fne | Flt | Fle | Fgt | Fge | Fmin | Fmax
    ->
      true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Lshr | Ashr | Eq | Ne
  | Lt | Le | Gt | Ge | Imin | Imax ->
      false

let bin_is_compare = function
  | Eq | Ne | Lt | Le | Gt | Ge | Feq | Fne | Flt | Fle | Fgt | Fge -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Lshr | Ashr | Fadd
  | Fsub | Fmul | Fdiv | Imin | Imax | Fmin | Fmax ->
      false

let bin_is_shift = function
  | Shl | Lshr | Ashr -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Fadd | Fsub | Fmul | Fdiv
  | Eq | Ne | Lt | Le | Gt | Ge | Feq | Fne | Flt | Fle | Fgt | Fge | Imin
  | Imax | Fmin | Fmax ->
      false

let un_is_truncation = function
  | Trunc32 | IntOfFloat | F32round -> true
  | Neg | Not | Fneg | Fabs | Fsqrt | Fsin | Fcos | FloatOfInt -> false

let eval_bin (op : bin) (a : Value.t) (b : Value.t) : Value.t =
  let f2 g = Value.of_float (g (Value.to_float a) (Value.to_float b)) in
  let cmpf g = Value.truth (g (Value.to_float a) (Value.to_float b)) in
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div ->
      if Int64.equal b 0L then raise (Trap "integer division by zero")
      else Int64.div a b
  | Rem ->
      if Int64.equal b 0L then raise (Trap "integer remainder by zero")
      else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl ->
      let s = Int64.to_int b land 63 in
      Int64.shift_left a s
  | Lshr ->
      let s = Int64.to_int b land 63 in
      Int64.shift_right_logical a s
  | Ashr ->
      let s = Int64.to_int b land 63 in
      Int64.shift_right a s
  | Fadd -> f2 ( +. )
  | Fsub -> f2 ( -. )
  | Fmul -> f2 ( *. )
  | Fdiv -> f2 ( /. )
  | Eq -> Value.truth (Int64.equal a b)
  | Ne -> Value.truth (not (Int64.equal a b))
  | Lt -> Value.truth (Int64.compare a b < 0)
  | Le -> Value.truth (Int64.compare a b <= 0)
  | Gt -> Value.truth (Int64.compare a b > 0)
  | Ge -> Value.truth (Int64.compare a b >= 0)
  | Feq -> cmpf (fun x y -> Float.compare x y = 0)
  | Fne -> cmpf (fun x y -> Float.compare x y <> 0)
  | Flt -> cmpf ( < )
  | Fle -> cmpf ( <= )
  | Fgt -> cmpf ( > )
  | Fge -> cmpf ( >= )
  | Imin -> if Int64.compare a b <= 0 then a else b
  | Imax -> if Int64.compare a b >= 0 then a else b
  | Fmin -> f2 Float.min
  | Fmax -> f2 Float.max

let eval_un (op : un) (a : Value.t) : Value.t =
  match op with
  | Neg -> Int64.neg a
  | Not -> Int64.lognot a
  | Fneg -> Value.of_float (-.Value.to_float a)
  | Fabs -> Value.of_float (Float.abs (Value.to_float a))
  | Fsqrt ->
      let x = Value.to_float a in
      if x < 0.0 then raise (Trap "sqrt of negative value")
      else Value.of_float (Float.sqrt x)
  | Fsin -> Value.of_float (Float.sin (Value.to_float a))
  | Fcos -> Value.of_float (Float.cos (Value.to_float a))
  | Trunc32 ->
      (* sign-extend the low 32 bits *)
      Int64.shift_right (Int64.shift_left a 32) 32
  | FloatOfInt -> Value.of_float (Int64.to_float a)
  | IntOfFloat ->
      let x = Value.to_float a in
      if Float.is_nan x then raise (Trap "int of NaN")
      else if Float.abs x >= 9.3e18 then raise (Trap "int of float overflow")
      else Int64.of_float x
  | F32round ->
      Value.of_float (Int32.float_of_bits (Int32.bits_of_float (Value.to_float a)))

(* Pre-dispatched evaluators: [bin_fn op] matches on the opcode ONCE
   and returns a closure computing exactly what [eval_bin op] computes
   per application — the compiled execution backend resolves operators
   at closure-compilation time so the hot loop never matches on a
   constructor.  [test_op] checks the two agree bit-for-bit on every
   opcode. *)

let bin_fn (op : bin) : Value.t -> Value.t -> Value.t =
  let f2 g a b = Value.of_float (g (Value.to_float a) (Value.to_float b)) in
  let cmpf g a b = Value.truth (g (Value.to_float a) (Value.to_float b)) in
  match op with
  | Add -> Int64.add
  | Sub -> Int64.sub
  | Mul -> Int64.mul
  | Div ->
      fun a b ->
        if Int64.equal b 0L then raise (Trap "integer division by zero")
        else Int64.div a b
  | Rem ->
      fun a b ->
        if Int64.equal b 0L then raise (Trap "integer remainder by zero")
        else Int64.rem a b
  | And -> Int64.logand
  | Or -> Int64.logor
  | Xor -> Int64.logxor
  | Shl -> fun a b -> Int64.shift_left a (Int64.to_int b land 63)
  | Lshr -> fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Ashr -> fun a b -> Int64.shift_right a (Int64.to_int b land 63)
  | Fadd -> f2 ( +. )
  | Fsub -> f2 ( -. )
  | Fmul -> f2 ( *. )
  | Fdiv -> f2 ( /. )
  | Eq -> fun a b -> Value.truth (Int64.equal a b)
  | Ne -> fun a b -> Value.truth (not (Int64.equal a b))
  | Lt -> fun a b -> Value.truth (Int64.compare a b < 0)
  | Le -> fun a b -> Value.truth (Int64.compare a b <= 0)
  | Gt -> fun a b -> Value.truth (Int64.compare a b > 0)
  | Ge -> fun a b -> Value.truth (Int64.compare a b >= 0)
  | Feq -> cmpf (fun x y -> Float.compare x y = 0)
  | Fne -> cmpf (fun x y -> Float.compare x y <> 0)
  | Flt -> cmpf ( < )
  | Fle -> cmpf ( <= )
  | Fgt -> cmpf ( > )
  | Fge -> cmpf ( >= )
  | Imin -> fun a b -> if Int64.compare a b <= 0 then a else b
  | Imax -> fun a b -> if Int64.compare a b >= 0 then a else b
  | Fmin -> f2 Float.min
  | Fmax -> f2 Float.max

let un_fn (op : un) : Value.t -> Value.t =
  match op with
  | Neg -> Int64.neg
  | Not -> Int64.lognot
  | Fneg -> fun a -> Value.of_float (-.Value.to_float a)
  | Fabs -> fun a -> Value.of_float (Float.abs (Value.to_float a))
  | Fsqrt ->
      fun a ->
        let x = Value.to_float a in
        if x < 0.0 then raise (Trap "sqrt of negative value")
        else Value.of_float (Float.sqrt x)
  | Fsin -> fun a -> Value.of_float (Float.sin (Value.to_float a))
  | Fcos -> fun a -> Value.of_float (Float.cos (Value.to_float a))
  | Trunc32 -> fun a -> Int64.shift_right (Int64.shift_left a 32) 32
  | FloatOfInt -> fun a -> Value.of_float (Int64.to_float a)
  | IntOfFloat ->
      fun a ->
        let x = Value.to_float a in
        if Float.is_nan x then raise (Trap "int of NaN")
        else if Float.abs x >= 9.3e18 then raise (Trap "int of float overflow")
        else Int64.of_float x
  | F32round ->
      fun a ->
        Value.of_float
          (Int32.float_of_bits (Int32.bits_of_float (Value.to_float a)))

let bin_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | Feq -> "feq" | Fne -> "fne" | Flt -> "flt" | Fle -> "fle"
  | Fgt -> "fgt" | Fge -> "fge"
  | Imin -> "imin" | Imax -> "imax" | Fmin -> "fmin" | Fmax -> "fmax"

let un_to_string = function
  | Neg -> "neg" | Not -> "not" | Fneg -> "fneg" | Fabs -> "fabs"
  | Fsqrt -> "fsqrt" | Fsin -> "fsin" | Fcos -> "fcos"
  | Trunc32 -> "trunc32" | FloatOfInt -> "sitofp"
  | IntOfFloat -> "fptosi" | F32round -> "f32round"

let pp_bin ppf op = Fmt.string ppf (bin_to_string op)
let pp_un ppf op = Fmt.string ppf (un_to_string op)
