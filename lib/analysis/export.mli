(** Exporters for the analysis artifacts: CSV for external plotting and
    a dependency-free SVG step chart for the ACL series (the paper's
    Figure 7 rendering). *)

val csv_field : string -> string
(** RFC 4180 quoting: a field containing a comma, double quote, or line
    break is wrapped in quotes with embedded quotes doubled; other
    fields pass through unchanged. *)

val series_to_csv : ?header:string * string -> (int * int) array -> string
val acl_to_csv : Acl.result -> string

val events_to_csv : Acl.result -> string
(** Death and masking events: kind, event index, source line, region. *)

val series_to_svg :
  ?width:int -> ?height:int -> ?title:string -> (int * int) array -> string
(** A self-contained SVG step chart; valid (empty) SVG for an empty
    series. *)

val write_file : string -> string -> unit
