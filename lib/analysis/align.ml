(** Lockstep alignment of a faulty trace against its fault-free twin.

    While the two traces execute the same control path (same function
    and pc per event), the walker maintains shadow machine states for
    both runs and the set of *corrupted* locations — locations whose
    faulty-run value differs from the fault-free value.  This is the
    value-based notion of corruption from the paper (stricter than
    taint: a masked value is clean again even though it depends on the
    fault).

    When the control paths diverge, alignment stops; analyses treat the
    remainder as control-flow divergence, which the paper detects the
    same way (by comparing operations between the two DDDGs). *)

type t = {
  next_clean : unit -> Trace.event option;
      (** pull the next clean event; [None] at end of stream *)
  next_faulty : unit -> Trace.event option;
  mutable pos : int;  (** next event index to process *)
  shadow_clean : Value.t Loc.Tbl.t;
  shadow_faulty : Value.t Loc.Tbl.t;
  corrupted : Value.t Loc.Tbl.t;
      (** corrupted locations, mapped to their current *clean* value *)
  fault : Machine.fault option;
  mutable fault_applied : bool;
  mutable diverged_at : int option;
}

let puller (s : Trace.event Seq.t) : unit -> Trace.event option =
  let cur = ref s in
  fun () ->
    match !cur () with
    | Seq.Nil -> None
    | Seq.Cons (e, rest) ->
        cur := rest;
        Some e

let create_seq ?fault ~(clean : Trace.event Seq.t)
    ~(faulty : Trace.event Seq.t) () : t =
  {
    next_clean = puller clean;
    next_faulty = puller faulty;
    pos = 0;
    shadow_clean = Loc.Tbl.create 4096;
    shadow_faulty = Loc.Tbl.create 4096;
    corrupted = Loc.Tbl.create 64;
    fault;
    fault_applied = false;
    diverged_at = None;
  }

let create ?fault ~(clean : Trace.t) ~(faulty : Trace.t) () : t =
  create_seq ?fault ~clean:(Trace.to_seq clean) ~faulty:(Trace.to_seq faulty)
    ()

let shadow_value tbl loc =
  match Loc.Tbl.find_opt tbl loc with Some v -> v | None -> Value.zero

let clean_value (w : t) loc = shadow_value w.shadow_clean loc
let faulty_value (w : t) loc = shadow_value w.shadow_faulty loc
let is_corrupted (w : t) loc = Loc.Tbl.mem w.corrupted loc
let corrupted_count (w : t) = Loc.Tbl.length w.corrupted

let corrupted_locs (w : t) : Loc.t list =
  Loc.Tbl.fold (fun loc _ acc -> loc :: acc) w.corrupted []

(** Error magnitude (Equation 2) of a corrupted location right now. *)
let magnitude (w : t) loc : float option =
  match Loc.Tbl.find_opt w.corrupted loc with
  | None -> None
  | Some clean ->
      Some (Value.error_magnitude ~correct:clean ~faulty:(faulty_value w loc))

let update_corruption (w : t) loc =
  let cv = clean_value w loc and fv = faulty_value w loc in
  if Value.equal cv fv then Loc.Tbl.remove w.corrupted loc
  else Loc.Tbl.replace w.corrupted loc cv

(** Force a pending [Flip_mem] fault whose trigger sequence has been
    reached into the faulty shadow state.  [Align.step] does this
    automatically before each event; analyses that snapshot state
    between events (e.g. at a region entry) call it explicitly with the
    next event's sequence number. *)
let apply_pending_fault (w : t) ~(next_seq : int) : unit =
  match w.fault with
  | Some (Machine.Flip_mem { seq; addr; bit })
    when (not w.fault_applied) && next_seq >= seq ->
      w.fault_applied <- true;
      let loc = Loc.Mem addr in
      let v = Value.flip_bit (faulty_value w loc) bit in
      Loc.Tbl.replace w.shadow_faulty loc v;
      update_corruption w loc
  | Some (Machine.Mask_mem { seq; addr; and_mask; or_mask; xor_mask })
    when (not w.fault_applied) && next_seq >= seq ->
      w.fault_applied <- true;
      let loc = Loc.Mem addr in
      let v =
        Machine.apply_masks (faulty_value w loc) ~and_mask ~or_mask ~xor_mask
      in
      Loc.Tbl.replace w.shadow_faulty loc v;
      update_corruption w loc
  | Some
      ( Machine.Flip_mem _ | Machine.Flip_write _ | Machine.Mask_mem _
      | Machine.Mask_write _ | Machine.Cache_fault _ )
  | None ->
      ()

type step =
  | Step of {
      index : int;  (** event index that was just processed *)
      clean_ev : Trace.event;
      faulty_ev : Trace.event;
      changed : Loc.t list;  (** locations written this step (either run) *)
    }
  | Diverged of int  (** control paths differ starting at this index *)
  | End

(** Advance by one event.  Must not be called again after [Diverged] or
    [End]. *)
let step (w : t) : step =
  match w.diverged_at with
  | Some i -> Diverged i
  | None -> (
      match (w.next_clean (), w.next_faulty ()) with
      | None, None -> End
      | Some _, None | None, Some _ ->
          (* one run is shorter/longer (crash or hang): the common
             prefix has been consumed *)
          w.diverged_at <- Some w.pos;
          Diverged w.pos
      | Some ec, Some ef ->
          if Trace.control_signature ec <> Trace.control_signature ef then begin
            w.diverged_at <- Some w.pos;
            Diverged w.pos
          end
          else begin
          (* a pending memory-flip fault lands before its trigger event *)
          apply_pending_fault w ~next_seq:ef.seq;
          let changed = ref [] in
          Array.iter
            (fun (loc, v) ->
              Loc.Tbl.replace w.shadow_clean loc v;
              changed := loc :: !changed)
            ec.writes;
          Array.iter
            (fun (loc, v) ->
              Loc.Tbl.replace w.shadow_faulty loc v;
              if not (List.exists (Loc.equal loc) !changed) then
                changed := loc :: !changed)
            ef.writes;
            List.iter (update_corruption w) !changed;
            w.pos <- w.pos + 1;
            Step
              { index = w.pos - 1; clean_ev = ec; faulty_ev = ef;
                changed = !changed }
          end)

(** Run the walker to completion, invoking [f] on every aligned step.
    Returns the divergence index, if control flow diverged. *)
let walk ?fault ~clean ~faulty (f : step -> unit) : int option =
  let w = create ?fault ~clean ~faulty () in
  let rec go () =
    match step w with
    | Step _ as s ->
        f s;
        go ()
    | Diverged i ->
        f (Diverged i);
        Some i
    | End -> None
  in
  go ()
