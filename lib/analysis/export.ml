(** Exporters for the analysis artifacts: CSV series for external
    plotting, and a dependency-free SVG line chart good enough to
    eyeball an ACL series (the paper's Figure 7 rendering). *)

(** Quote a CSV field per RFC 4180: fields containing the separator, a
    quote, or a line break are wrapped in double quotes with embedded
    quotes doubled; anything else passes through untouched. *)
let csv_field (s : string) : string =
  let needs_quoting =
    String.exists (function '"' | ',' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(** Write an (x, y) integer series as two-column CSV. *)
let series_to_csv ?(header = ("instruction", "acl")) (series : (int * int) array)
    : string =
  let buf = Buffer.create 4096 in
  let hx, hy = header in
  Buffer.add_string buf
    (Printf.sprintf "%s,%s\n" (csv_field hx) (csv_field hy));
  Array.iter
    (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%d,%d\n" x y))
    series;
  Buffer.contents buf

(** The ACL change-point series as a step-function CSV. *)
let acl_to_csv (acl : Acl.result) : string = series_to_csv acl.Acl.series

(** Death and masking events as CSV (kind, event index, line, region). *)
let events_to_csv (acl : Acl.result) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "kind,index,line,region\n";
  List.iter
    (fun (d : Acl.death) ->
      Buffer.add_string buf
        (Printf.sprintf "death-%s,%d,%d,%d\n"
           (match d.Acl.d_cause with
           | Acl.Overwritten -> "overwritten"
           | Acl.Dead -> "dead")
           d.Acl.d_index d.Acl.d_line d.Acl.d_region))
    acl.Acl.deaths;
  List.iter
    (fun (m : Acl.masking) ->
      Buffer.add_string buf
        (Printf.sprintf "mask-%s,%d,%d,%d\n"
           (csv_field (Acl.mask_kind_to_string m.Acl.m_kind))
           m.Acl.m_index m.Acl.m_line m.Acl.m_region))
    acl.Acl.maskings;
  Buffer.contents buf

(** A minimal self-contained SVG step chart of an integer series. *)
let series_to_svg ?(width = 800) ?(height = 240) ?(title = "")
    (series : (int * int) array) : string =
  let n = Array.length series in
  if n = 0 then
    Printf.sprintf
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\"/>"
      width height
  else begin
    let margin = 40 in
    let xmin = fst series.(0) and xmax = fst series.(n - 1) in
    let ymax = Array.fold_left (fun a (_, y) -> max a y) 1 series in
    let fx x =
      if xmax = xmin then float_of_int margin
      else
        float_of_int margin
        +. float_of_int (x - xmin)
           /. float_of_int (xmax - xmin)
           *. float_of_int (width - (2 * margin))
    in
    let fy y =
      float_of_int (height - margin)
      -. (float_of_int y /. float_of_int ymax
         *. float_of_int (height - (2 * margin)))
    in
    let buf = Buffer.create 8192 in
    Buffer.add_string buf
      (Printf.sprintf
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
          viewBox=\"0 0 %d %d\">\n"
         width height width height);
    Buffer.add_string buf
      (Printf.sprintf
         "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height);
    if not (String.equal title "") then
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"20\" font-family=\"monospace\" font-size=\"13\">%s</text>\n"
           margin title);
    (* axes *)
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n"
         margin (height - margin) (width - margin) (height - margin));
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n"
         margin margin margin (height - margin));
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"4\" y=\"%d\" font-family=\"monospace\" font-size=\"11\">%d</text>\n"
         (margin + 4) ymax);
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"%d\" font-family=\"monospace\" font-size=\"11\">%d</text>\n"
         (width - margin - 40)
         (height - margin + 14)
         xmax);
    (* step polyline *)
    Buffer.add_string buf "<polyline fill=\"none\" stroke=\"#0a5fbf\" stroke-width=\"1.2\" points=\"";
    let prev_y = ref (snd series.(0)) in
    Array.iter
      (fun (x, y) ->
        (* horizontal then vertical: a step function *)
        Buffer.add_string buf (Printf.sprintf "%.1f,%.1f " (fx x) (fy !prev_y));
        Buffer.add_string buf (Printf.sprintf "%.1f,%.1f " (fx x) (fy y));
        prev_y := y)
      series;
    Buffer.add_string buf "\"/>\n</svg>\n";
    Buffer.contents buf
  end

let write_file (path : string) (contents : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
