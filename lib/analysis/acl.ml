(** The Alive-Corrupted-Locations (ACL) table.

    Walks a faulty trace aligned against its fault-free twin and
    maintains, after every dynamic instruction, the number of locations
    that are simultaneously
    {ul
    {- {e corrupted}: their faulty-run value differs from the
       fault-free value, and}
    {- {e alive}: the value will be referenced again before being
       overwritten.}}

    Besides the count series (Figure 7 of the paper), the analysis
    emits the two event streams from which resilience patterns are
    recognized:
    {ul
    {- {e death events} — a corrupted location stops being counted,
       either because a clean value overwrote it (Data Overwriting) or
       because it is never referenced again (Dead Corrupted
       Locations);}
    {- {e masking events} — an instruction consumed a corrupted operand
       but produced a clean result (Shifting, Truncation, Conditional
       Statement, output Truncation through a print format), or a
       self-accumulating store shrank the error magnitude of a location
       (Repeated Additions).}} *)

type mask_kind =
  | Shift_mask       (** corrupted bits shifted out *)
  | Trunc_mask       (** corrupted bits removed by trunc32/fptosi/f32 *)
  | Cond_mask        (** corrupted compare operand, same branch outcome *)
  | Print_mask       (** corrupted value, identical formatted output *)
  | Repeated_add of { before : float; after : float }
      (** error magnitude shrank through a self-accumulating addition *)
  | Other_mask       (** any other value-level masking (mul by 0, min/max...) *)

type masking = {
  m_index : int;   (** event index in the trace *)
  m_loc : Loc.t;   (** the corrupted location involved *)
  m_kind : mask_kind;
  m_line : int;
  m_region : int;
  m_instance : int;
}

type death_cause =
  | Overwritten  (** clean value stored over the corruption *)
  | Dead         (** never referenced again: dead corrupted location *)

type death = {
  d_index : int;
  d_loc : Loc.t;
  d_cause : death_cause;
  d_fed_forward : bool;
      (** the corrupted value was read at least once before dying *)
  d_line : int;
  d_region : int;
}

type result = {
  series : (int * int) array;
      (** (dynamic seq, ACL count) at every change point *)
  deaths : death list;
  maskings : masking list;
  divergence : int option;
  peak : int;    (** maximum ACL count observed *)
  final : int;   (** ACL count when alignment ended *)
}

(* Status of a corrupted location in the ACL bookkeeping. *)
type status = { mutable alive : bool; mutable sched : int (* death index *) }

let mask_kind_to_string = function
  | Shift_mask -> "shift"
  | Trunc_mask -> "truncation"
  | Cond_mask -> "conditional"
  | Print_mask -> "print-truncation"
  | Repeated_add _ -> "repeated-addition"
  | Other_mask -> "other"

(* The ACL walk, parameterized over the liveness oracle: [fate loc
   ~after:idx] answers what happens to the value in [loc] established
   at event [idx] of the faulty trace.  The materialized path backs it
   with a random-access index ({!Access.fate}); the streaming path with
   a pre-resolved answer table. *)
let analyze_core (w : Align.t) (fate : Loc.t -> after:int -> Access.fate) :
    result =
  let statuses : status Loc.Tbl.t = Loc.Tbl.create 64 in
  let scheduled : (int, (Loc.t * bool) list) Hashtbl.t = Hashtbl.create 64 in
  let mags : float Loc.Tbl.t = Loc.Tbl.create 64 in
  let last_writer : Trace.opclass Loc.Tbl.t = Loc.Tbl.create 4096 in
  let count = ref 0 in
  let peak = ref 0 in
  let series = ref [] in
  let deaths = ref [] in
  let maskings = ref [] in
  let record_count seq =
    (match !series with
    | (_, c) :: _ when c = !count -> ()
    | _ ->
        series := (seq, !count) :: !series;
        if !count > !peak then peak := !count)
  in
  let schedule idx loc ~has_write =
    Hashtbl.replace scheduled idx
      ((loc, has_write) :: (try Hashtbl.find scheduled idx with Not_found -> []))
  in
  let make_alive idx loc =
    (* the location is corrupted as of event [idx]; decide liveness *)
    let st =
      match Loc.Tbl.find_opt statuses loc with
      | Some st -> st
      | None ->
          let st = { alive = false; sched = -1 } in
          Loc.Tbl.add statuses loc st;
          st
    in
    match fate loc ~after:idx with
    | `Dies_after_read (r, next_write) ->
        if not st.alive then begin
          st.alive <- true;
          incr count
        end;
        st.sched <- r + 1;
        schedule (r + 1) loc ~has_write:(next_write <> None)
    | `Overwritten_at _ ->
        (* not referenced before the next write: corrupted but never
           alive; the overwrite event will decide its death cause *)
        if st.alive then begin
          st.alive <- false;
          decr count
        end;
        st.sched <- -1
    | `Never_used ->
        if st.alive then begin
          st.alive <- false;
          decr count
        end;
        st.sched <- -1
  in
  let kill idx loc ~cause ~(ev : Trace.event) =
    match Loc.Tbl.find_opt statuses loc with
    | None -> ()
    | Some st ->
        if st.alive then begin
          st.alive <- false;
          decr count
        end;
        Loc.Tbl.remove statuses loc;
        let fed =
          (* it was read while corrupted iff its fate from its corruption
             point included a read; approximated by: it was alive at some
             point (scheduled) *)
          st.sched >= 0
        in
        deaths :=
          {
            d_index = idx;
            d_loc = loc;
            d_cause = cause;
            d_fed_forward = fed;
            d_line = ev.line;
            d_region = ev.region;
          }
          :: !deaths
  in
  let divergence = ref None in
  let finished = ref false in
  while not !finished do
    match Align.step w with
    | Align.End -> finished := true
    | Align.Diverged i ->
        divergence := Some i;
        finished := true
    | Align.Step { index; clean_ev; faulty_ev; changed } ->
        (* 1. scheduled deaths: locations whose last read has passed *)
        (match Hashtbl.find_opt scheduled index with
        | None -> ()
        | Some locs ->
            Hashtbl.remove scheduled index;
            List.iter
              (fun (loc, has_write) ->
                match Loc.Tbl.find_opt statuses loc with
                | Some st when st.alive && st.sched = index ->
                    if Align.is_corrupted w loc then
                      if has_write then begin
                        (* the value's last use has passed but a write
                           follows: it stops being alive now, and the
                           overwrite event decides the death cause *)
                        st.alive <- false;
                        decr count
                      end
                      else kill index loc ~cause:Dead ~ev:faulty_ev
                | Some _ | None -> ())
              locs);
        (* 2. masking detection on reads of corrupted locations *)
        let corrupted_reads =
          Array.to_list faulty_ev.reads
          |> List.filter (fun (loc, _) ->
                 Loc.Tbl.mem statuses loc && Align.is_corrupted w loc)
        in
        if corrupted_reads <> [] then begin
          let outputs_clean =
            Array.length faulty_ev.writes > 0
            && Array.for_all
                 (fun (loc, _) -> not (Align.is_corrupted w loc))
                 faulty_ev.writes
          in
          let emit kind loc =
            maskings :=
              {
                m_index = index;
                m_loc = loc;
                m_kind = kind;
                m_line = faulty_ev.line;
                m_region = faulty_ev.region;
                m_instance = faulty_ev.instance;
              }
              :: !maskings
          in
          (match (faulty_ev.op, clean_ev.op) with
          | Trace.OBr tf, Trace.OBr tc ->
              if Bool.equal tf tc then
                List.iter (fun (loc, _) -> emit Cond_mask loc) corrupted_reads
          | Trace.OIntr s, _ when String.length s > 6
                                  && String.equal (String.sub s 0 6) "print:" ->
              let fmt = String.sub s 6 (String.length s - 6) in
              let faulty_args = Array.to_list faulty_ev.reads |> List.map snd in
              let clean_args =
                Array.to_list clean_ev.reads |> List.map snd
              in
              let rendered_f = Machine.format_output fmt faulty_args in
              let rendered_c = Machine.format_output fmt clean_args in
              if String.equal rendered_f rendered_c then
                List.iter (fun (loc, _) -> emit Print_mask loc) corrupted_reads
          | Trace.OBin op, _ when outputs_clean && Op.bin_is_shift op ->
              List.iter (fun (loc, _) -> emit Shift_mask loc) corrupted_reads
          | Trace.OBin op, _ when outputs_clean && Op.bin_is_compare op ->
              (* a compare with a corrupted operand that still resolves
                 to the fault-free boolean: the Conditional Statement
                 pattern at its decision site *)
              List.iter (fun (loc, _) -> emit Cond_mask loc) corrupted_reads
          | Trace.OUn op, _ when outputs_clean && Op.un_is_truncation op ->
              List.iter (fun (loc, _) -> emit Trunc_mask loc) corrupted_reads
          | (Trace.OBin _ | Trace.OUn _ | Trace.OConst | Trace.OLoad
            | Trace.OStore | Trace.OIntr _ | Trace.OCall | Trace.ORet
            | Trace.OJmp | Trace.OMark _ | Trace.OBr _), _ ->
              if outputs_clean then
                List.iter (fun (loc, _) -> emit Other_mask loc) corrupted_reads)
        end;
        (* 3. corruption status updates for written locations *)
        List.iter
          (fun loc ->
            let was = Loc.Tbl.mem statuses loc in
            if Align.is_corrupted w loc then begin
              (* repeated-addition check before refreshing the magnitude *)
              let new_mag =
                match Align.magnitude w loc with Some m -> m | None -> 0.0
              in
              (match (Loc.Tbl.find_opt mags loc, faulty_ev.op) with
              | Some old_mag, Trace.OStore
                when was && Array.length faulty_ev.reads > 0 ->
                  let src_loc = fst faulty_ev.reads.(0) in
                  let src_op = Loc.Tbl.find_opt last_writer src_loc in
                  let is_add =
                    match src_op with
                    | Some (Trace.OBin (Op.Fadd | Op.Fsub)) -> true
                    | Some _ | None -> false
                  in
                  if
                    is_add && Float.is_finite old_mag && Float.is_finite new_mag
                    && new_mag < old_mag
                  then
                    maskings :=
                      {
                        m_index = index;
                        m_loc = loc;
                        m_kind = Repeated_add { before = old_mag; after = new_mag };
                        m_line = faulty_ev.line;
                        m_region = faulty_ev.region;
                        m_instance = faulty_ev.instance;
                      }
                      :: !maskings
              | (Some _ | None), _ -> ());
              Loc.Tbl.replace mags loc new_mag;
              make_alive index loc
            end
            else begin
              Loc.Tbl.remove mags loc;
              if was then kill index loc ~cause:Overwritten ~ev:faulty_ev
            end)
          changed;
        (* 4. remember who wrote each location (for repeated additions) *)
        Array.iter
          (fun (loc, _) -> Loc.Tbl.replace last_writer loc faulty_ev.op)
          faulty_ev.writes;
        record_count faulty_ev.seq
  done;
  {
    series = Array.of_list (List.rev !series);
    deaths = List.rev !deaths;
    maskings = List.rev !maskings;
    divergence = !divergence;
    peak = !peak;
    final = !count;
  }

let analyze ?fault ~(clean : Trace.t) ~(faulty : Trace.t) () : result =
  let access = Access.build faulty in
  let w = Align.create ?fault ~clean ~faulty () in
  analyze_core w (fun loc ~after -> Access.fate access loc ~after)

(* --- streaming (constant-memory) path ----------------------------------- *)

(* Per-location state of the single-pass fate resolver (pass 2):
   [pending] holds the query event indices collected in pass 1, sorted
   ascending; [next] is the first not-yet-activated one; [active] are
   queries whose index has passed and whose fate is still undecided,
   paired with the last read seen so far (-1 = none).  A write resolves
   every active query, so [active] stays tiny (one entry in practice:
   a new query is only created by a later corrupting write, which first
   resolves its predecessor). *)
type fate_state = {
  pending : int array;
  mutable next : int;
  mutable active : (int * int ref) list;
}

(** [analyze] over restartable event sources, never materializing a
    trace.  Three passes: (1) an alignment walk collects the (event
    index, location) liveness queries the ACL walk will ask; (2) one
    forward scan of the faulty stream resolves every query exactly as
    {!Access.fate} would; (3) the ACL walk runs against the answer
    table.  Peak memory is proportional to distinct written locations
    plus corruption events — independent of the trace length.  The
    result is identical to [analyze] by construction. *)
let analyze_stream ?fault ~(clean : Trace_io.source)
    ~(faulty : Trace_io.source) () : result =
  (* pass 1: which (idx, loc) fates will the ACL walk ask for? *)
  let queries : int list ref Loc.Tbl.t = Loc.Tbl.create 64 in
  clean.Trace_io.run (fun clean_seq ->
      faulty.Trace_io.run (fun faulty_seq ->
          let w = Align.create_seq ?fault ~clean:clean_seq ~faulty:faulty_seq () in
          let stop = ref false in
          while not !stop do
            match Align.step w with
            | Align.End | Align.Diverged _ -> stop := true
            | Align.Step { index; changed; _ } ->
                List.iter
                  (fun loc ->
                    if Align.is_corrupted w loc then
                      match Loc.Tbl.find_opt queries loc with
                      | Some l -> l := index :: !l
                      | None -> Loc.Tbl.add queries loc (ref [ index ]))
                  changed
          done));
  (* pass 2: resolve every query in one forward scan of the faulty
     stream, replicating Access.fate's strictly-after, reads-before-
     writes-within-an-event semantics *)
  let states : fate_state Loc.Tbl.t = Loc.Tbl.create (Loc.Tbl.length queries) in
  Loc.Tbl.iter
    (fun loc l ->
      Loc.Tbl.add states loc
        { pending = Array.of_list (List.rev !l); next = 0; active = [] })
    queries;
  let answers : (int * Loc.t, Access.fate) Hashtbl.t = Hashtbl.create 256 in
  let activate (st : fate_state) (i : int) =
    while
      st.next < Array.length st.pending && st.pending.(st.next) < i
    do
      st.active <- (st.pending.(st.next), ref (-1)) :: st.active;
      st.next <- st.next + 1
    done
  in
  faulty.Trace_io.run (fun faulty_seq ->
      let i = ref 0 in
      Seq.iter
        (fun (e : Trace.event) ->
          Array.iter
            (fun (loc, _) ->
              match Loc.Tbl.find_opt states loc with
              | None -> ()
              | Some st ->
                  activate st !i;
                  List.iter (fun (_, last_read) -> last_read := !i) st.active)
            e.reads;
          Array.iter
            (fun (loc, _) ->
              match Loc.Tbl.find_opt states loc with
              | None -> ()
              | Some st ->
                  activate st !i;
                  List.iter
                    (fun (q, last_read) ->
                      Hashtbl.replace answers (q, loc)
                        (if !last_read >= 0 then
                           `Dies_after_read (!last_read, Some !i)
                         else `Overwritten_at !i))
                    st.active;
                  st.active <- [])
            e.writes;
          incr i)
        faulty_seq);
  (* end of stream: still-active queries die with their last read (or
     were never referenced); never-activated ones saw no later access *)
  Loc.Tbl.iter
    (fun loc st ->
      List.iter
        (fun (q, last_read) ->
          Hashtbl.replace answers (q, loc)
            (if !last_read >= 0 then `Dies_after_read (!last_read, None)
             else `Never_used))
        st.active;
      for k = st.next to Array.length st.pending - 1 do
        Hashtbl.replace answers (st.pending.(k), loc) `Never_used
      done)
    states;
  (* pass 3: the ACL walk proper, fed by the answer table *)
  let fate loc ~after =
    match Hashtbl.find_opt answers (after, loc) with
    | Some f -> f
    | None ->
        (* pass 1 and pass 3 walk identical streams, so every query is
           pre-answered; a miss means the source is not restartable *)
        invalid_arg "Acl.analyze_stream: non-restartable event source"
  in
  clean.Trace_io.run (fun clean_seq ->
      faulty.Trace_io.run (fun faulty_seq ->
          let w = Align.create_seq ?fault ~clean:clean_seq ~faulty:faulty_seq () in
          analyze_core w fate))
