(** Trace serialization: a line-oriented text format (one event per
    line, the LLVM-Tracer-file analog), a compact varint/delta binary
    format with a versioned header, streaming readers and writers, and
    per-code-region-instance splitting (the paper's trace-splitting
    step, Section IV-A).  See the implementation header for the exact
    byte layout of binary format version 1. *)

exception
  Parse_error of {
    line : string;  (** the offending line, or a short binary context *)
    token : string;  (** the offending token, or [""] *)
    msg : string;
  }
(** Raised on any malformed trace input, text or binary. *)

type format = Text | Binary

val magic : string
(** First bytes of a binary trace file: ["FTB"] plus a version byte. *)

(* --- text tokens --- *)

val opclass_code : Trace.opclass -> string

val parse_opclass : ?line:string -> string -> Trace.opclass
(** @raise Parse_error on an unknown or malformed opclass token;
    [?line] is attached to the error for context. *)

val parse_loc : ?line:string -> string -> Loc.t
(** @raise Parse_error on a malformed location token. *)

val write_event : Buffer.t -> Trace.event -> unit
(** Appends one text line (terminated by a newline). *)

val parse_event : string -> Trace.event
(** @raise Parse_error on a malformed line. *)

(* --- incremental writers --- *)

type writer
(** An incremental event writer over an [out_channel]; buffers
    internally and keeps the delta/shadow state of the binary codec. *)

val writer : ?format:format -> out_channel -> writer
(** Defaults to [Text].  A binary writer emits {!magic} immediately. *)

val write : writer -> Trace.event -> unit

val flush_writer : writer -> unit
(** Flush buffered bytes to the channel (the channel stays open and is
    never closed by this module's writers). *)

val writer_events : writer -> int
val writer_bytes : writer -> int
(** Events and bytes written so far (header included). *)

val write_channel : ?format:format -> out_channel -> Trace.t -> unit
val save : ?format:format -> string -> Trace.t -> unit

(* --- streaming readers --- *)

val events_of_channel : in_channel -> Trace.event Seq.t
(** Lazy event sequence; the encoding is sniffed from the first bytes.
    Single-shot: forcing the sequence consumes the channel.
    @raise Parse_error on malformed input (when forced). *)

val read_channel : in_channel -> Trace.t
val load : string -> Trace.t
(** Both accept either encoding. *)

type source = { run : 'a. (Trace.event Seq.t -> 'a) -> 'a }
(** A restartable event stream: each [run] invocation feeds a fresh
    sequence, so multi-pass analyses ({!Acl.analyze_stream}) can replay
    it.  File-backed sources open and close the file per [run]; the
    sequence must not escape the callback. *)

val source_of_trace : Trace.t -> source
val source_of_file : string -> source

(* --- region-instance splitting --- *)

val split_seq :
  dir:string ->
  ?prefix:string ->
  ?format:format ->
  Trace.event Seq.t ->
  string list
(** One file per region instance under [dir] (created if needed), named
    [<prefix>_r<region>_i<instance>.trace]; returns the paths in
    encounter order.  Streaming: single pass, one open piece at a time.
    Events outside any region (region [-1]) are dropped, as before. *)

val split_by_region_instance :
  dir:string -> ?prefix:string -> ?format:format -> Trace.t -> string list
(** {!split_seq} over a materialized trace. *)

(* --- low-level binary codec (bench/test instrumentation) --- *)

type encoder
(** Delta/shadow state of the binary codec, for callers that need
    per-event byte accounting; {!writer} is the normal interface. *)

val encoder : unit -> encoder

val encode_event : encoder -> Buffer.t -> Trace.event -> unit
(** Appends one event's binary encoding ({e without} the file header);
    bytes appended across successive calls on one [encoder] are exactly
    the file body a binary {!writer} would produce. *)
