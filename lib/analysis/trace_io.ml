(** Trace serialization.

    The paper's tracer (LLVM-Tracer) writes one trace file per MPI
    process, and FlipTracker's implementation splits those files into
    per-code-region-instance pieces for parallel analysis
    (Section IV-A).  This module provides the same artifacts in two
    interchangeable encodings plus the streaming plumbing that lets
    analyses consume trace files without materializing a
    [Trace.event list]:

    {ul
    {- a line-oriented {e text} format, kept for debugging and diffing;}
    {- a compact {e binary} format (varint + delta encoded, versioned
       header) that is several times smaller and faster to decode;}
    {- channel writers/readers for both, a [Seq.t] event reader that
       sniffs the format, restartable {!source}s for multi-pass
       streaming analyses, and region-instance splitting that works
       directly on an event stream.}}

    Text format, one event per line, space-separated:

    {v seq fidx pc act line region instance iter op #reads r... #writes w... v}

    where each read/write is [loc:hexvalue] and a location is [rA.R]
    (register R of activation A) or [mADDR] (memory word).

    Binary format (version 1): the 4-byte magic {!magic} ("FTB\x01",
    last byte = version), then events back to back until end of file.
    Every integer is an LEB128 varint, signed ones zigzag-coded.  An
    event is: a stamp-flags byte (bit i set = stamp i differs from its
    prediction and an explicit zigzag delta follows; stamp order seq,
    fidx, pc, act, line, region, instance, iter; predictions: seq and
    pc advance by one, the rest repeat), an opmeta byte (low nibble:
    opclass tag; bits 4-5 / 6-7: read / write counts, 3 = varint
    escape), the explicit stamp deltas in bit order, the opclass
    payload (op index byte, mark zigzag, or length-prefixed intrinsic
    name), then the read and write sets.  Each access is a tag byte —
    bit 0: register (0) / memory (1); bits 1-2: value kind — followed
    by the location (register: bits 4-7 hold the index, 15 = varint
    escape, and bit 3 flags a zigzag activation delta against the
    event's activation; memory: bits 3-7 hold the low address bits,
    varint of the rest follows) and the value XORed against the last
    value seen at that location in the stream (encoder and decoder
    keep identical per-location shadow tables): kind 2 means the XOR
    is zero and has no payload, kinds 0/1 are the raw / byte-reversed
    varint (whichever is shorter), kind 3 is 8 raw little-endian bytes
    when no varint wins.  Straight-line execution pays two header
    bytes per event; unchanged re-read values cost one byte. *)

exception
  Parse_error of {
    line : string;  (** the offending line, or a short binary context *)
    token : string;  (** the offending token, or "" *)
    msg : string;
  }

let parse_error ~line ~token msg = raise (Parse_error { line; token; msg })

let () =
  Printexc.register_printer (function
    | Parse_error { line; token; msg } ->
        Some
          (Printf.sprintf "Trace_io.Parse_error: %s (token %S, line %S)" msg
             token
             (if String.length line > 120 then String.sub line 0 120 ^ "..."
              else line))
    | _ -> None)

type format = Text | Binary

(* --- opclass tables ---------------------------------------------------- *)

(* declaration order of Op.bin / Op.un: these arrays define both the
   text names' search space and the binary opcode indices, so their
   order is part of binary format version 1 *)
let bin_ops =
  [|
    Op.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Lshr; Ashr; Fadd; Fsub;
    Fmul; Fdiv; Eq; Ne; Lt; Le; Gt; Ge; Feq; Fne; Flt; Fle; Fgt; Fge; Imin;
    Imax; Fmin; Fmax;
  |]

let un_ops =
  [|
    Op.Neg; Not; Fneg; Fabs; Fsqrt; Fsin; Fcos; Trunc32; FloatOfInt;
    IntOfFloat; F32round;
  |]

let bin_index : (Op.bin, int) Hashtbl.t =
  let h = Hashtbl.create 64 in
  Array.iteri (fun i o -> Hashtbl.replace h o i) bin_ops;
  h

let un_index : (Op.un, int) Hashtbl.t =
  let h = Hashtbl.create 32 in
  Array.iteri (fun i o -> Hashtbl.replace h o i) un_ops;
  h

(* --- text format ------------------------------------------------------- *)

let pp_loc_compact buf (loc : Loc.t) =
  match loc with
  | Loc.Reg (a, r) -> Buffer.add_string buf (Printf.sprintf "r%d.%d" a r)
  | Loc.Mem m -> Buffer.add_string buf (Printf.sprintf "m%d" m)

let parse_loc ?(line = "") (s : string) : Loc.t =
  let fail msg = parse_error ~line ~token:s msg in
  let int_field sub =
    match int_of_string_opt sub with
    | Some v -> v
    | None -> fail (Printf.sprintf "location field %S is not an integer" sub)
  in
  if String.length s < 2 then fail "location shorter than two characters"
  else if Char.equal s.[0] 'm' then
    Loc.Mem (int_field (String.sub s 1 (String.length s - 1)))
  else if Char.equal s.[0] 'r' then
    match String.index_opt s '.' with
    | Some dot ->
        Loc.Reg
          ( int_field (String.sub s 1 (dot - 1)),
            int_field (String.sub s (dot + 1) (String.length s - dot - 1)) )
    | None -> fail "register location has no '.' separator"
  else fail "location must start with 'r' or 'm'"

(* Percent-encoding for intrinsic names (which carry arbitrary format
   strings).  Every byte outside a conservative safe set is escaped as
   %XX, and decoding is strict: a '%' not followed by two hex digits is
   a parse error.  Encoder and decoder cover exactly the same set, so
   any byte string round-trips. *)
let safe_byte c =
  (* printable ASCII minus space (the token separator) and '%' (the
     escape character); everything else — controls, tab, CR, LF, high
     bytes — is escaped *)
  c > ' ' && c < '\x7f' && not (Char.equal c '%')

let percent_encode (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      if safe_byte c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let percent_decode ?(line = "") (s : string) : string =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex i =
    match s.[i] with
    | '0' .. '9' -> Char.code s.[i] - Char.code '0'
    | 'a' .. 'f' -> Char.code s.[i] - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code s.[i] - Char.code 'A' + 10
    | _ ->
        parse_error ~line ~token:s
          (Printf.sprintf "invalid percent escape at offset %d" (i - 1))
  in
  let rec go i =
    if i >= n then ()
    else if Char.equal s.[i] '%' then
      if i + 2 >= n then
        parse_error ~line ~token:s "truncated percent escape"
      else begin
        Buffer.add_char buf (Char.chr ((hex (i + 1) * 16) + hex (i + 2)));
        go (i + 3)
      end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let opclass_code : Trace.opclass -> string = function
  | Trace.OConst -> "c"
  | Trace.OBin op -> "b:" ^ Op.bin_to_string op
  | Trace.OUn op -> "u:" ^ Op.un_to_string op
  | Trace.OLoad -> "l"
  | Trace.OStore -> "s"
  | Trace.OJmp -> "j"
  | Trace.OBr true -> "t"
  | Trace.OBr false -> "f"
  | Trace.OCall -> "C"
  | Trace.ORet -> "R"
  | Trace.OIntr s -> "i:" ^ percent_encode s
  | Trace.OMark m -> "M:" ^ string_of_int m

let parse_opclass ?(line = "") (s : string) : Trace.opclass =
  let fail msg = parse_error ~line ~token:s msg in
  if String.length s = 0 then fail "empty opclass token"
  else
    let tail () =
      if String.length s < 2 then fail "opclass is missing its ':' payload"
      else String.sub s 2 (String.length s - 2)
    in
    match s.[0] with
    | 'c' -> Trace.OConst
    | 'l' -> Trace.OLoad
    | 's' -> Trace.OStore
    | 'j' -> Trace.OJmp
    | 't' -> Trace.OBr true
    | 'f' -> Trace.OBr false
    | 'C' -> Trace.OCall
    | 'R' -> Trace.ORet
    | 'M' -> (
        match int_of_string_opt (tail ()) with
        | Some m -> Trace.OMark m
        | None -> fail "mark id is not an integer")
    | 'i' -> Trace.OIntr (percent_decode ~line (tail ()))
    | 'b' -> (
        let name = tail () in
        match
          Array.find_opt
            (fun o -> String.equal (Op.bin_to_string o) name)
            bin_ops
        with
        | Some o -> Trace.OBin o
        | None -> fail (Printf.sprintf "unknown binary op %S" name))
    | 'u' -> (
        let name = tail () in
        match
          Array.find_opt
            (fun o -> String.equal (Op.un_to_string o) name)
            un_ops
        with
        | Some o -> Trace.OUn o
        | None -> fail (Printf.sprintf "unknown unary op %S" name))
    | _ -> fail "unknown opclass tag"

let write_event (buf : Buffer.t) (e : Trace.event) : unit =
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %d %d %d %d %s %d" e.seq e.fidx e.pc e.act
       e.line e.region e.instance e.iter (opclass_code e.op)
       (Array.length e.reads));
  Array.iter
    (fun (loc, v) ->
      Buffer.add_char buf ' ';
      pp_loc_compact buf loc;
      Buffer.add_string buf (Printf.sprintf ":%Lx" v))
    e.reads;
  Buffer.add_string buf (Printf.sprintf " %d" (Array.length e.writes));
  Array.iter
    (fun (loc, v) ->
      Buffer.add_char buf ' ';
      pp_loc_compact buf loc;
      Buffer.add_string buf (Printf.sprintf ":%Lx" v))
    e.writes;
  Buffer.add_char buf '\n'

let parse_event (line : string) : Trace.event =
  let fail token msg = parse_error ~line ~token msg in
  let toks = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
  let int_tok what tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None -> fail tok (Printf.sprintf "%s is not an integer" what)
  in
  match toks with
  | seq :: fidx :: pc :: act :: ln :: region :: instance :: iter :: op
    :: nreads :: rest ->
      let nreads = int_tok "read count" nreads in
      let parse_access tok =
        match String.index_opt tok ':' with
        | Some i -> (
            let hex = String.sub tok (i + 1) (String.length tok - i - 1) in
            match Int64.of_string_opt ("0x" ^ hex) with
            | Some v -> (parse_loc ~line (String.sub tok 0 i), v)
            | None -> fail tok "access value is not hexadecimal")
        | None -> fail tok "access has no ':' separator"
      in
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> fail "" "truncated access list"
        | t :: rest -> take (n - 1) (parse_access t :: acc) rest
      in
      let reads, rest = take nreads [] rest in
      let writes =
        match rest with
        | nw :: rest ->
            let nw = int_tok "write count" nw in
            let writes, rest = take nw [] rest in
            if rest <> [] then
              fail (List.hd rest) "trailing tokens after the write set";
            writes
        | [] -> fail "" "missing write count"
      in
      {
        Trace.seq = int_tok "seq" seq;
        fidx = int_tok "fidx" fidx;
        pc = int_tok "pc" pc;
        act = int_tok "act" act;
        line = int_tok "line" ln;
        region = int_tok "region" region;
        instance = int_tok "instance" instance;
        iter = int_tok "iter" iter;
        op = parse_opclass ~line op;
        reads = Array.of_list reads;
        writes = Array.of_list writes;
      }
  | _ -> fail "" "fewer than ten header fields"

(* --- binary format: primitives ----------------------------------------- *)

let magic = "FTB\x01"

let add_varint64 (buf : Buffer.t) (v : int64) : unit =
  let v = ref v in
  let fin = ref false in
  while not !fin do
    let b = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char buf (Char.chr b);
      fin := true
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let varint64_len (v : int64) : int =
  let v = ref (Int64.shift_right_logical v 7) in
  let n = ref 1 in
  while not (Int64.equal !v 0L) do
    v := Int64.shift_right_logical !v 7;
    incr n
  done;
  !n

let add_varint buf (v : int) = add_varint64 buf (Int64.of_int v)

let zigzag64 (v : int64) : int64 =
  Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag64 (v : int64) : int64 =
  Int64.logxor (Int64.shift_right_logical v 1)
    (Int64.neg (Int64.logand v 1L))

let add_zigzag buf (v : int) = add_varint64 buf (zigzag64 (Int64.of_int v))

let bswap64 (v : int64) : int64 =
  let byte i = Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL in
  let r = ref 0L in
  for i = 0 to 7 do
    r := Int64.logor (Int64.shift_left !r 8) (byte i)
  done;
  !r

(* Access tag byte: bit 0 selects register (0) or memory (1); bits 1-2
   the value-delta payload (raw varint, byte-reversed varint, zero —
   no payload —, or fixed 8-byte LE); for registers bit 3 flags a
   non-zero activation delta and bits 4-7 inline the register index
   (15 = varint follows); for memory bits 3-7 inline the address's low
   five bits (varint of the rest always follows). *)
let tag_mem = 1
let vk_raw = 0
and vk_swapped = 1
and vk_zero = 2
and vk_fixed8 = 3
let tag_vk vk = vk lsl 1
let tag_act_delta = 8  (* registers only *)
let reg_inline_max = 15  (* bits 4-7; 15 = escape to varint *)
let mem_inline_bits = 5  (* bits 3-7 hold addr land 0x1F *)

(* Delta state shared by the encoder and decoder: the previous event's
   stamps and the last value seen at each location. *)
type bstate = {
  mutable p_seq : int;
  mutable p_fidx : int;
  mutable p_pc : int;
  mutable p_act : int;
  mutable p_line : int;
  mutable p_region : int;
  mutable p_instance : int;
  mutable p_iter : int;
  shadow : int64 Loc.Tbl.t;
}

let bstate () =
  {
    p_seq = 0;
    p_fidx = 0;
    p_pc = 0;
    p_act = 0;
    p_line = 0;
    p_region = 0;
    p_instance = 0;
    p_iter = 0;
    shadow = Loc.Tbl.create 1024;
  }

type encoder = bstate

let encoder = bstate

let shadow_value st loc =
  match Loc.Tbl.find_opt st.shadow loc with Some v -> v | None -> 0L

let add_fixed8 (buf : Buffer.t) (v : int64) : unit =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let encode_access (st : bstate) (buf : Buffer.t) ~(act : int)
    ((loc, v) : Loc.t * Value.t) : unit =
  let d = Int64.logxor v (shadow_value st loc) in
  let vk, payload =
    if Int64.equal d 0L then (vk_zero, 0L)
    else
      let swapped = bswap64 d in
      let lr = varint64_len d and ls = varint64_len swapped in
      if lr <= ls then if lr > 8 then (vk_fixed8, d) else (vk_raw, d)
      else if ls > 8 then (vk_fixed8, d)
      else (vk_swapped, swapped)
  in
  (match loc with
  | Loc.Reg (a, r) ->
      let da = a - act in
      let tag =
        tag_vk vk
        lor (if da <> 0 then tag_act_delta else 0)
        lor ((min r reg_inline_max) lsl 4)
      in
      Buffer.add_char buf (Char.chr tag);
      if da <> 0 then add_zigzag buf da;
      if r >= reg_inline_max then add_varint buf r
  | Loc.Mem m ->
      let tag = tag_mem lor tag_vk vk lor ((m land 0x1F) lsl 3) in
      Buffer.add_char buf (Char.chr tag);
      add_varint buf (m lsr mem_inline_bits));
  if vk = vk_raw || vk = vk_swapped then add_varint64 buf payload
  else if vk = vk_fixed8 then add_fixed8 buf payload;
  Loc.Tbl.replace st.shadow loc v

(* opclass tags (low nibble of the opmeta byte); part of binary format
   version 1 *)
let op_const = 0
and op_load = 1
and op_store = 2
and op_jmp = 3
and op_br_false = 4
and op_br_true = 5
and op_call = 6
and op_ret = 7
and op_mark = 8
and op_bin = 9
and op_un = 10
and op_intr = 11

let op_tag : Trace.opclass -> int = function
  | Trace.OConst -> op_const
  | Trace.OLoad -> op_load
  | Trace.OStore -> op_store
  | Trace.OJmp -> op_jmp
  | Trace.OBr false -> op_br_false
  | Trace.OBr true -> op_br_true
  | Trace.OCall -> op_call
  | Trace.ORet -> op_ret
  | Trace.OMark _ -> op_mark
  | Trace.OBin _ -> op_bin
  | Trace.OUn _ -> op_un
  | Trace.OIntr _ -> op_intr

(* Event layout: a stamp-flags byte (bit i set = stamp i differs from
   its prediction and an explicit zigzag delta follows), an opmeta byte
   (low nibble: opclass tag; bits 4-5 / 6-7: read / write counts, 3 =
   varint escape), the explicit stamp deltas in bit order, the opclass
   payload (op index byte, mark varint, or length-prefixed intrinsic
   name), then the read and write sets.  Predictions: seq and pc
   advance by one, every other stamp repeats — so straight-line
   execution pays two header bytes per event. *)
let stamp_count = 8

(* (prediction, actual) per stamp, in flag-bit order *)
let stamp_specs (st : bstate) (e : Trace.event) =
  [|
    (st.p_seq + 1, e.seq);
    (st.p_fidx, e.fidx);
    (st.p_pc + 1, e.pc);
    (st.p_act, e.act);
    (st.p_line, e.line);
    (st.p_region, e.region);
    (st.p_instance, e.instance);
    (st.p_iter, e.iter);
  |]

let remember (st : bstate) (e : Trace.event) : unit =
  st.p_seq <- e.seq;
  st.p_fidx <- e.fidx;
  st.p_pc <- e.pc;
  st.p_act <- e.act;
  st.p_line <- e.line;
  st.p_region <- e.region;
  st.p_instance <- e.instance;
  st.p_iter <- e.iter

let encode_event (st : bstate) (buf : Buffer.t) (e : Trace.event) : unit =
  let specs = stamp_specs st e in
  let flags = ref 0 in
  Array.iteri
    (fun i (pred, actual) -> if actual <> pred then flags := !flags lor (1 lsl i))
    specs;
  Buffer.add_char buf (Char.chr !flags);
  let count_bits n = if n < 3 then n else 3 in
  let nreads = Array.length e.reads and nwrites = Array.length e.writes in
  let opmeta =
    op_tag e.op lor (count_bits nreads lsl 4) lor (count_bits nwrites lsl 6)
  in
  Buffer.add_char buf (Char.chr opmeta);
  Array.iteri
    (fun i (pred, actual) ->
      if !flags land (1 lsl i) <> 0 then add_zigzag buf (actual - pred))
    specs;
  remember st e;
  (match e.op with
  | Trace.OMark m -> add_zigzag buf m
  | Trace.OBin op -> Buffer.add_char buf (Char.chr (Hashtbl.find bin_index op))
  | Trace.OUn op -> Buffer.add_char buf (Char.chr (Hashtbl.find un_index op))
  | Trace.OIntr s ->
      add_varint buf (String.length s);
      Buffer.add_string buf s
  | Trace.OConst | Trace.OLoad | Trace.OStore | Trace.OJmp | Trace.OBr _
  | Trace.OCall | Trace.ORet ->
      ());
  if nreads >= 3 then add_varint buf nreads;
  Array.iter (encode_access st buf ~act:e.act) e.reads;
  if nwrites >= 3 then add_varint buf nwrites;
  Array.iter (encode_access st buf ~act:e.act) e.writes

(* decoding reads bytes from an in_channel (which buffers in C) *)

let binary_error msg = parse_error ~line:"<binary trace>" ~token:"" msg

let read_varint64 (ic : in_channel) : int64 =
  let rec go shift acc =
    if shift > 63 then binary_error "varint longer than 64 bits"
    else
      let b =
        try input_byte ic
        with End_of_file -> binary_error "truncated varint"
      in
      let acc =
        Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift)
      in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0L

let read_varint ic = Int64.to_int (read_varint64 ic)
let read_zigzag ic = Int64.to_int (unzigzag64 (read_varint64 ic))

let read_byte what ic =
  try input_byte ic
  with End_of_file -> binary_error ("truncated " ^ what)

let read_fixed8 (ic : in_channel) : int64 =
  let v = ref 0L in
  for i = 0 to 7 do
    let b = read_byte "fixed value" ic in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int b) (8 * i))
  done;
  !v

let decode_access (st : bstate) (ic : in_channel) ~(act : int) :
    Loc.t * Value.t =
  let tag = read_byte "access tag" ic in
  let vk = (tag lsr 1) land 3 in
  let loc =
    if tag land tag_mem <> 0 then
      let lo = (tag lsr 3) land 0x1F in
      let hi = read_varint ic in
      Loc.Mem ((hi lsl mem_inline_bits) lor lo)
    else
      let da = if tag land tag_act_delta <> 0 then read_zigzag ic else 0 in
      let r = tag lsr 4 in
      let r = if r >= reg_inline_max then read_varint ic else r in
      Loc.Reg (act + da, r)
  in
  let d =
    if vk = vk_zero then 0L
    else if vk = vk_fixed8 then read_fixed8 ic
    else
      let d = read_varint64 ic in
      if vk = vk_swapped then bswap64 d else d
  in
  let v = Int64.logxor d (shadow_value st loc) in
  Loc.Tbl.replace st.shadow loc v;
  (loc, v)

(** Decode one event; [None] at a clean end of stream.  An end of file
    inside an event raises {!Parse_error}. *)
let decode_event (st : bstate) (ic : in_channel) : Trace.event option =
  match input_byte ic with
  | exception End_of_file -> None
  | flags ->
      let opmeta = read_byte "opmeta" ic in
      let stamps = Array.make stamp_count 0 in
      let preds =
        [|
          st.p_seq + 1; st.p_fidx; st.p_pc + 1; st.p_act; st.p_line;
          st.p_region; st.p_instance; st.p_iter;
        |]
      in
      for i = 0 to stamp_count - 1 do
        stamps.(i) <-
          (if flags land (1 lsl i) <> 0 then preds.(i) + read_zigzag ic
           else preds.(i))
      done;
      let seq = stamps.(0)
      and fidx = stamps.(1)
      and pc = stamps.(2)
      and act = stamps.(3)
      and line = stamps.(4)
      and region = stamps.(5)
      and instance = stamps.(6)
      and iter = stamps.(7) in
      st.p_seq <- seq;
      st.p_fidx <- fidx;
      st.p_pc <- pc;
      st.p_act <- act;
      st.p_line <- line;
      st.p_region <- region;
      st.p_instance <- instance;
      st.p_iter <- iter;
      let op =
        let tag = opmeta land 0xF in
        if tag = op_const then Trace.OConst
        else if tag = op_load then Trace.OLoad
        else if tag = op_store then Trace.OStore
        else if tag = op_jmp then Trace.OJmp
        else if tag = op_br_false then Trace.OBr false
        else if tag = op_br_true then Trace.OBr true
        else if tag = op_call then Trace.OCall
        else if tag = op_ret then Trace.ORet
        else if tag = op_mark then Trace.OMark (read_zigzag ic)
        else if tag = op_bin then begin
          let i = read_byte "binary op" ic in
          if i >= Array.length bin_ops then
            binary_error (Printf.sprintf "unknown binary op index %d" i)
          else Trace.OBin bin_ops.(i)
        end
        else if tag = op_un then begin
          let i = read_byte "unary op" ic in
          if i >= Array.length un_ops then
            binary_error (Printf.sprintf "unknown unary op index %d" i)
          else Trace.OUn un_ops.(i)
        end
        else if tag = op_intr then begin
          let n = read_varint ic in
          if n < 0 then binary_error "negative intrinsic length"
          else
            let b = Bytes.create n in
            (try really_input ic b 0 n
             with End_of_file -> binary_error "truncated intrinsic name");
            Trace.OIntr (Bytes.unsafe_to_string b)
        end
        else binary_error (Printf.sprintf "unknown opclass tag %d" tag)
      in
      let count bits =
        let c = (opmeta lsr bits) land 3 in
        if c < 3 then c
        else
          let n = read_varint ic in
          if n < 3 then binary_error "invalid escaped access count" else n
      in
      (* decode strictly in stream order: each access mutates the
         shadow table *)
      let read_accesses n =
        if n = 0 then [||]
        else begin
          let a = Array.make n (decode_access st ic ~act) in
          for k = 1 to n - 1 do
            a.(k) <- decode_access st ic ~act
          done;
          a
        end
      in
      let reads = read_accesses (count 4) in
      let writes = read_accesses (count 6) in
      Some
        {
          Trace.seq; fidx; pc; act; line; region; instance; iter; op; reads;
          writes;
        }

(* --- writers ------------------------------------------------------------ *)

type writer = {
  w_oc : out_channel;
  w_buf : Buffer.t;
  w_enc : bstate option;  (** [Some] = binary *)
  mutable w_events : int;
  mutable w_bytes : int;  (** bytes written so far, header included *)
}

let flush_threshold = 1 lsl 20

let writer ?(format = Text) (oc : out_channel) : writer =
  let w =
    {
      w_oc = oc;
      w_buf = Buffer.create 65536;
      w_enc = (match format with Text -> None | Binary -> Some (bstate ()));
      w_events = 0;
      w_bytes = 0;
    }
  in
  (match format with Text -> () | Binary -> Buffer.add_string w.w_buf magic);
  w

let write (w : writer) (e : Trace.event) : unit =
  (match w.w_enc with
  | None -> write_event w.w_buf e
  | Some st -> encode_event st w.w_buf e);
  w.w_events <- w.w_events + 1;
  if Buffer.length w.w_buf > flush_threshold then begin
    w.w_bytes <- w.w_bytes + Buffer.length w.w_buf;
    Buffer.output_buffer w.w_oc w.w_buf;
    Buffer.clear w.w_buf
  end

(** Flush buffered events to the channel (the channel stays open). *)
let flush_writer (w : writer) : unit =
  w.w_bytes <- w.w_bytes + Buffer.length w.w_buf;
  Buffer.output_buffer w.w_oc w.w_buf;
  Buffer.clear w.w_buf;
  flush w.w_oc

let writer_events (w : writer) = w.w_events
let writer_bytes (w : writer) = w.w_bytes + Buffer.length w.w_buf

(** Serialize a whole trace to a channel. *)
let write_channel ?(format = Text) (oc : out_channel) (t : Trace.t) : unit =
  let w = writer ~format oc in
  Trace.iter (fun e -> write w e) t;
  flush_writer w

let save ?(format = Text) (path : string) (t : Trace.t) : unit =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel ~format oc t)

(* --- readers ------------------------------------------------------------ *)

let binary_seq (ic : in_channel) : Trace.event Seq.t =
  let st = bstate () in
  let rec next () =
    match decode_event st ic with
    | None -> Seq.Nil
    | Some e -> Seq.Cons (e, next)
  in
  next

(* Text events as a lazy sequence.  [carry] is a prefix already read
   from the channel during format sniffing; a text trace line is always
   longer than the probe, so the common case simply prepends it to the
   first line.  Empty lines are skipped, as in the historical reader. *)
let text_seq ~(carry : string) (ic : in_channel) : Trace.event Seq.t =
  let read_line_opt () = try Some (input_line ic) with End_of_file -> None in
  let first_lines =
    if String.equal carry "" then []
    else if String.contains carry '\n' then begin
      (* only reachable on hand-written files with a tiny first line *)
      let parts = String.split_on_char '\n' carry in
      match List.rev parts with
      | last :: complete_rev ->
          let completed =
            match read_line_opt () with
            | Some rest -> [ last ^ rest ]
            | None -> if String.equal last "" then [] else [ last ]
          in
          List.rev_append complete_rev completed
      | [] -> []
    end
    else
      match read_line_opt () with
      | Some rest -> [ carry ^ rest ]
      | None -> [ carry ]
  in
  let rec from_pending pending () =
    match pending with
    | line :: rest ->
        if String.length line = 0 then from_pending rest ()
        else Seq.Cons (parse_event line, from_pending rest)
    | [] -> (
        match read_line_opt () with
        | None -> Seq.Nil
        | Some line ->
            if String.length line = 0 then from_pending [] ()
            else Seq.Cons (parse_event line, from_pending []))
  in
  from_pending first_lines

(** Events of a channel as a lazy sequence; the encoding is sniffed
    from the first bytes (the binary magic vs. a text line).  The
    sequence is single-shot: it consumes the channel as it is forced. *)
let events_of_channel (ic : in_channel) : Trace.event Seq.t =
  let probe = Bytes.create (String.length magic) in
  let got =
    let rec fill k =
      if k >= Bytes.length probe then k
      else
        match input_char ic with
        | exception End_of_file -> k
        | c ->
            Bytes.set probe k c;
            fill (k + 1)
    in
    fill 0
  in
  let probe = Bytes.sub_string probe 0 got in
  if String.equal probe magic then binary_seq ic
  else if got = 0 then Seq.empty
  else if String.length probe >= 1 && Char.equal probe.[0] magic.[0] then
    parse_error ~line:probe ~token:""
      "binary trace magic mismatch (unsupported version?)"
  else text_seq ~carry:probe ic

(** Read a whole trace back from a channel (either encoding). *)
let read_channel (ic : in_channel) : Trace.t =
  let t = Trace.create () in
  Seq.iter (fun e -> Trace.push t e) (events_of_channel ic);
  t

let load (path : string) : Trace.t =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

(* --- restartable sources ------------------------------------------------ *)

type source = { run : 'a. (Trace.event Seq.t -> 'a) -> 'a }

let source_of_trace (t : Trace.t) : source =
  { run = (fun k -> k (Trace.to_seq t)) }

let source_of_file (path : string) : source =
  {
    run =
      (fun k ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> k (events_of_channel ic)));
  }

(* --- region-instance splitting ------------------------------------------ *)

(** Split an event stream into one file per code-region instance under
    [dir] (the paper's trace-splitting step), named
    [<prefix>_r<region>_i<instance>.trace].  Streaming: one pass, one
    open piece at a time, memory independent of the trace length.
    Returns the files written, in encounter order. *)
let split_seq ~(dir : string) ?(prefix = "trace") ?(format = Text)
    (events : Trace.event Seq.t) : string list =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let paths = ref [] in
  let cur = ref None (* (rid, number, oc, writer) *) in
  let close_cur () =
    match !cur with
    | None -> ()
    | Some (_, _, oc, w) ->
        flush_writer w;
        close_out oc;
        cur := None
  in
  let open_piece rid number =
    let path =
      Filename.concat dir (Printf.sprintf "%s_r%d_i%d.trace" prefix rid number)
    in
    let oc = open_out_bin path in
    cur := Some (rid, number, oc, writer ~format oc);
    paths := path :: !paths
  in
  Fun.protect ~finally:close_cur (fun () ->
      Seq.iter
        (fun (e : Trace.event) ->
          (match !cur with
          | Some (rid, number, _, _)
            when e.Trace.region = rid && e.Trace.instance = number ->
              ()
          | Some _ | None ->
              close_cur ();
              if e.Trace.region >= 0 then open_piece e.Trace.region e.Trace.instance);
          match !cur with
          | Some (_, _, _, w) -> write w e
          | None -> ())
        events);
  List.rev !paths

(** [split_seq] over a materialized trace. *)
let split_by_region_instance ~(dir : string) ?(prefix = "trace")
    ?(format = Text) (t : Trace.t) : string list =
  split_seq ~dir ~prefix ~format (Trace.to_seq t)
