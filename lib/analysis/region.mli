(** Code-region instances in a dynamic trace: the chain of dynamic
    executions of the paper's code regions (first-level inner loops of
    the main loop, or the blocks between them). *)

type instance = {
  rid : int;     (** region id, index into [Prog.region_table] *)
  number : int;  (** instance number of this region, 0-based *)
  lo : int;      (** first event index (inclusive) *)
  hi : int;      (** last event index (exclusive) *)
  iter : int;    (** main-loop iteration the instance started in *)
}

val instances : Trace.t -> instance list
(** The chain of region instances, in execution order. *)

val instances_seq : Trace.event Seq.t -> instance list
(** Same, in one pass over an event stream; memory proportional to the
    number of instances, not the trace length. *)

val instances_of : Trace.t -> int -> instance list
val find_instance : Trace.t -> rid:int -> number:int -> instance option
val size : instance -> int

val iteration_spans : Trace.t -> (int * (int * int)) list
(** Event-index span of each main-loop iteration, ordered by iteration
    number (setup code before the first marker is excluded). *)

val pp_instance : Format.formatter -> instance -> unit
