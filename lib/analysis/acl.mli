(** The Alive-Corrupted-Locations (ACL) table: after every dynamic
    instruction of a faulty run, the number of locations that are both
    corrupted (value differs from the fault-free run) and alive (will
    be read again before being overwritten).  Emits the death and
    masking event streams from which the six resilience computation
    patterns are recognized. *)

type mask_kind =
  | Shift_mask   (** corrupted bits shifted out *)
  | Trunc_mask   (** corrupted bits removed by a narrowing conversion *)
  | Cond_mask    (** corrupted compare operand, same boolean outcome *)
  | Print_mask   (** corrupted value, identical formatted output *)
  | Repeated_add of { before : float; after : float }
      (** error magnitude shrank through a self-accumulating addition *)
  | Other_mask   (** any other value-level masking (mul by 0, min/max) *)

type masking = {
  m_index : int;
  m_loc : Loc.t;
  m_kind : mask_kind;
  m_line : int;
  m_region : int;
  m_instance : int;
}

type death_cause =
  | Overwritten  (** clean value stored over the corruption *)
  | Dead         (** never referenced again: dead corrupted location *)

type death = {
  d_index : int;
  d_loc : Loc.t;
  d_cause : death_cause;
  d_fed_forward : bool;  (** read at least once while corrupted *)
  d_line : int;
  d_region : int;
}

type result = {
  series : (int * int) array;  (** (seq, ACL count) at change points *)
  deaths : death list;
  maskings : masking list;
  divergence : int option;
  peak : int;
  final : int;
}

val mask_kind_to_string : mask_kind -> string

val analyze :
  ?fault:Machine.fault -> clean:Trace.t -> faulty:Trace.t -> unit -> result
(** Walk the aligned traces and build the ACL table.  [fault] must be
    the fault of the faulty run when it was a [Flip_mem] (memory flips
    leave no write event in the trace). *)

val analyze_stream :
  ?fault:Machine.fault ->
  clean:Trace_io.source ->
  faulty:Trace_io.source ->
  unit ->
  result
(** [analyze] over restartable event sources (e.g. trace files),
    never materializing a trace: three streaming passes whose peak
    memory is proportional to the number of distinct written locations
    plus corruption events, independent of trace length.  Identical
    results to [analyze] by construction. *)
