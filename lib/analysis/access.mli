(** Per-location access index: for every location, the ordered sequence
    of reads and writes.  The liveness side of the ACL table — a
    corrupted location is {e alive} at time [t] iff it is read again
    after [t] before being overwritten. *)

type kind = Read | Write

type t

type fate =
  [ `Dies_after_read of int * int option
    (** last read before the next write, and that write if any *)
  | `Overwritten_at of int  (** a write comes before any read *)
  | `Never_used ]

val build : Trace.t -> t

val build_seq : Trace.event Seq.t -> t
(** Build the index in one pass over an event stream (events are
    indexed by their position in the sequence). *)

val accesses : t -> Loc.t -> (int * kind) array
(** Sorted (event index, kind) accesses; [| |] for untouched locations. *)

val fate : t -> Loc.t -> after:int -> fate
(** The fate of the value established in [loc] at event [after]. *)

val alive : t -> Loc.t -> after:int -> bool
(** Will the value established at [after] be read again before being
    overwritten? *)

val read_in : t -> Loc.t -> lo:int -> hi:int -> bool
val written_in : t -> Loc.t -> lo:int -> hi:int -> bool
