(** Straight-line code insertion into a function body.

    The IR addresses branch targets as absolute indices into the
    function's instruction array, and every instruction carries
    parallel [lines]/[regions] metadata — so inserting code is not a
    local edit.  [apply] does the whole rewrite in one pass: it places
    each insertion before or after its anchor instruction, rebuilds the
    metadata arrays (inserted instructions inherit the anchor's source
    line and region, keeping region-based analyses meaningful), and
    retargets every [Jmp]/[Bnz] in the function.

    Placement semantics:
    {ul
    {- a [Before] block becomes part of the anchor's position: branches
       that targeted the anchor now enter at the start of the inserted
       block, so the insertion executes on every path that executed the
       anchor;}
    {- an [After] block runs on the fall-through edge out of the
       anchor.  Anchors that are terminators ([Jmp]/[Bnz]/[Ret]) have
       no such edge and are rejected.}}

    Insertions must be straight-line: control-flow instructions in an
    inserted block are rejected, because their targets would be
    ambiguous under renumbering. *)

type pos = Before | After

type insertion = {
  at : int;            (** anchor pc in the {e input} function *)
  pos : pos;
  code : Instr.t list; (** straight-line instructions only *)
}

val apply : Prog.func -> insertion list -> Prog.func * int array
(** [apply f inss] returns the rewritten function and the pc map:
    [map.(old_pc)] is the new index of the input instruction [old_pc].
    Multiple insertions at the same anchor and position concatenate in
    list order.  The caller is responsible for bumping [nregs] if the
    inserted code uses fresh registers.
    @raise Invalid_argument on out-of-range anchors, control flow in an
    inserted block, or an [After] insertion on a terminator. *)
