(* Pass-manager core; see the mli. *)

type opts = { top_k : int }

let default_opts = { top_k = 3 }

type site_change = {
  ch_func : string;
  ch_pc : int;
  ch_line : int;
  ch_region : int;
  ch_note : string;
}

type report = {
  pass_name : string;
  sites_considered : int;
  sites_changed : int;
  instrs_added : int;
  instrs_removed : int;
  regs_added : int;
  changes : site_change list;
  protective : (string * int) list;
}

type result = {
  prog : Prog.t;
  rep : report;
  remap : fname:string -> pc:int -> int;
}

type t = {
  name : string;
  short : string;
  doc : string;
  run : opts -> Prog.t -> result;
}

exception Verify_failed of { passes : string list; diags : Verify.diag list }

let run_pipeline ?(opts = default_opts) (passes : t list) (p : Prog.t) :
    Prog.t * report list =
  let step (prog, reports) (pass : t) =
    let r = pass.run opts prog in
    Prog.validate r.prog;
    (* keep earlier passes' guard sites valid in the new numbering *)
    let reports =
      List.map
        (fun rep ->
          {
            rep with
            protective =
              List.map
                (fun (fname, pc) -> (fname, r.remap ~fname ~pc))
                rep.protective;
          })
        reports
    in
    (r.prog, reports @ [ r.rep ])
  in
  let prog, reports = List.fold_left step (p, []) passes in
  (match Verify.errors (Verify.verify prog) with
  | [] -> ()
  | errs ->
      raise
        (Verify_failed
           { passes = List.map (fun (ps : t) -> ps.name) passes; diags = errs }));
  (prog, reports)

let protective_sites (reports : report list) : (string * int) list =
  List.concat_map (fun r -> r.protective) reports

let pp_report ppf (r : report) =
  Fmt.pf ppf "%-18s %4d/%-4d sites changed  +%d instrs  +%d regs" r.pass_name
    r.sites_changed r.sites_considered r.instrs_added r.regs_added;
  if r.instrs_removed > 0 then Fmt.pf ppf "  -%d instrs" r.instrs_removed;
  List.iteri
    (fun i (c : site_change) ->
      if i < 4 then
        Fmt.pf ppf "@,    %s pc %d line %d: %s" c.ch_func c.ch_pc c.ch_line
          c.ch_note)
    r.changes;
  if List.length r.changes > 4 then
    Fmt.pf ppf "@,    ... %d more" (List.length r.changes - 4)

let () =
  Printexc.register_printer (function
    | Verify_failed { passes; diags } ->
        Some
          (Printf.sprintf
             "Pass.Verify_failed: pipeline [%s] produced %d error \
              diagnostic(s); first: %s"
             (String.concat "; " passes)
             (List.length diags)
             (match diags with
             | d :: _ -> Fmt.str "%a" Verify.pp_diag d
             | [] -> "?"))
    | _ -> None)
