(* Straight-line code insertion with branch retargeting; see the mli
   for the placement semantics. *)

type pos = Before | After

type insertion = { at : int; pos : pos; code : Instr.t list }

let apply (f : Prog.func) (inss : insertion list) : Prog.func * int array =
  let n = Array.length f.Prog.code in
  let before : Instr.t list list array = Array.make n [] in
  let after : Instr.t list list array = Array.make n [] in
  List.iter
    (fun { at; pos; code } ->
      if at < 0 || at >= n then
        invalid_arg
          (Printf.sprintf "Splice.apply: %s: anchor %d out of range"
             f.Prog.fname at);
      List.iter
        (fun (ins : Instr.t) ->
          match ins with
          | Instr.Jmp _ | Instr.Bnz _ | Instr.Ret _ ->
              invalid_arg
                (Printf.sprintf
                   "Splice.apply: %s: control flow in inserted block at %d"
                   f.Prog.fname at)
          | _ -> ())
        code;
      match pos with
      | Before -> before.(at) <- code :: before.(at)
      | After ->
          if Cfg.is_terminator f.Prog.code.(at) then
            invalid_arg
              (Printf.sprintf
                 "Splice.apply: %s: After-insertion on terminator at %d"
                 f.Prog.fname at);
          after.(at) <- code :: after.(at))
    inss;
  (* blocks were consed in reverse list order *)
  let before = Array.map (fun bs -> List.concat (List.rev bs)) before in
  let after = Array.map (fun bs -> List.concat (List.rev bs)) after in
  let map = Array.make n 0 in
  let total = ref 0 in
  for pc = 0 to n - 1 do
    total := !total + List.length before.(pc);
    map.(pc) <- !total;
    incr total;
    total := !total + List.length after.(pc)
  done;
  (* Branches to [pc] land at the start of its Before block. *)
  let target pc = map.(pc) - List.length before.(pc) in
  let retarget (ins : Instr.t) : Instr.t =
    match ins with
    | Instr.Jmp l -> Instr.Jmp (target l)
    | Instr.Bnz (c, l1, l2) -> Instr.Bnz (c, target l1, target l2)
    | other -> other
  in
  let code = Array.make !total (Instr.Jmp 0) in
  let lines = Array.make !total 0 in
  let regions = Array.make !total (-1) in
  let k = ref 0 in
  let push line region ins =
    code.(!k) <- ins;
    lines.(!k) <- line;
    regions.(!k) <- region;
    incr k
  in
  for pc = 0 to n - 1 do
    let line = f.Prog.lines.(pc) and region = f.Prog.regions.(pc) in
    List.iter (push line region) before.(pc);
    push line region (retarget f.Prog.code.(pc));
    List.iter (push line region) after.(pc)
  done;
  ({ f with Prog.code; lines; regions }, map)
