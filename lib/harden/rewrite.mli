(** General function-body rewriting, extending {!Splice}'s old->new
    pc-map contract with {e deletion} and {e replacement}.

    [apply] rewrites one function in a single renumbering pass:
    {ul
    {- [replace pc] returns [None] to keep the instruction, [Some []]
       to delete it, or [Some code] to substitute a straight-line
       sequence (branch targets inside replacement code are given in
       {e input} coordinates and are retargeted like kept code);}
    {- each {!insertion} places straight-line code immediately before
       its anchor.  Its [via] predicate decides, per branching source
       pc, whether a branch to the anchor enters the inserted code or
       keeps targeting the anchor itself — which is how a loop
       preheader is built: back-edge sources answer [false].
       Fall-through always enters the inserted code.}}

    The returned map sends each input pc to the new index of its (first
    replacement) instruction, or [-1] if it was deleted.  Branches to a
    deleted pc are retargeted to the next surviving instruction, which
    is semantics-preserving whenever deleted instructions are dead.
    Inserted and replacement instructions inherit the anchor's
    line/region metadata. *)

type insertion = {
  at : int;              (** anchor pc in the input function *)
  code : Instr.t list;   (** straight-line instructions only *)
  via : int -> bool;
      (** does a branch from this old src pc enter the inserted code? *)
}

val before : ?via:(int -> bool) -> int -> Instr.t list -> insertion
(** [before at code] inserts [code] immediately before [at]; [via]
    defaults to accepting every branch edge. *)

val apply :
  ?nregs:int ->
  ?insertions:insertion list ->
  replace:(int -> Instr.t list option) ->
  Prog.func ->
  Prog.func * int array
(** @raise Invalid_argument on out-of-range anchors, control flow in
    inserted code, or a rewrite that deletes the whole body. *)
