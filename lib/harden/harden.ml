(* Facade over the pass manager; see the mli. *)

let known_names () =
  String.concat ", "
    (List.map
       (fun (p : Pass.t) -> Printf.sprintf "%s (%s)" p.Pass.name p.Pass.short)
       Passes.all)

let parse_spec (spec : string) : (Pass.t list, string) result =
  let spec = String.trim spec in
  if String.equal (String.lowercase_ascii spec) "all" then Ok Passes.all
  else
    let parts =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> not (String.equal s ""))
    in
    if parts = [] then
      Error (Printf.sprintf "empty pass spec; known passes: %s" (known_names ()))
    else
      let unknown =
        List.filter (fun s -> Option.is_none (Passes.find s)) parts
      in
      match unknown with
      | u :: _ ->
          Error
            (Printf.sprintf "unknown pass %S; known passes: %s" u
               (known_names ()))
      | [] ->
          (* canonical order, independent of spec order *)
          Ok
            (List.filter
               (fun (p : Pass.t) ->
                 List.exists
                   (fun s ->
                     match Passes.find s with
                     | Some q -> String.equal q.Pass.name p.Pass.name
                     | None -> false)
                   parts)
               Passes.all)

let spec_names (passes : Pass.t list) : string =
  if
    List.length passes = List.length Passes.all
    && List.for_all2
         (fun (a : Pass.t) (b : Pass.t) -> String.equal a.Pass.name b.Pass.name)
         passes Passes.all
  then "all"
  else String.concat "+" (List.map (fun (p : Pass.t) -> p.Pass.short) passes)

let harden ?opts (passes : Pass.t list) (p : Prog.t) :
    Prog.t * Pass.report list =
  Pass.run_pipeline ?opts passes p

let transform ?opts (passes : Pass.t list) (p : Prog.t) : Prog.t =
  fst (harden ?opts passes p)

let ranking_after (p : Prog.t) (reports : Pass.report list) :
    Vuln.region_score list =
  Vuln.rank ~extra_protective:(Pass.protective_sites reports) p

let app_variant ?opts ?(passes = Passes.all) (base : App.t) : App.t =
  {
    base with
    App.name = base.App.name ^ "@" ^ spec_names passes;
    description =
      Printf.sprintf "%s, auto-hardened (%s)" base.App.description
        (String.concat ", "
           (List.map (fun (p : Pass.t) -> p.Pass.name) passes));
    transform = Some (transform ?opts passes);
  }
