(* General function-body rewriting: per-instruction replacement (including
   deletion) plus anchored insertion, with the same old->new pc-map
   contract as Splice — extended with -1 for deleted instructions. *)

type insertion = {
  at : int;              (* anchor pc in the input function *)
  code : Instr.t list;   (* straight-line instructions only *)
  via : int -> bool;     (* does a branch from this old src pc enter the
                            inserted code, or keep targeting the anchor? *)
}

let before ?(via = fun _ -> true) at code = { at; code; via }

let apply ?nregs ?(insertions = []) ~(replace : int -> Instr.t list option)
    (f : Prog.func) : Prog.func * int array =
  let n = Array.length f.Prog.code in
  if n = 0 then (f, [||])
  else begin
    let ins_at : insertion list array = Array.make n [] in
    List.iter
      (fun i ->
        if i.at < 0 || i.at >= n then
          invalid_arg
            (Printf.sprintf "Rewrite.apply: anchor %d out of range" i.at);
        List.iter
          (fun ins ->
            if Cfg.is_terminator ins then
              invalid_arg "Rewrite.apply: control flow in inserted code")
          i.code;
        ins_at.(i.at) <- ins_at.(i.at) @ [ i ])
      insertions;
    let repl =
      Array.init n (fun pc ->
          match replace pc with None -> [ f.Prog.code.(pc) ] | Some l -> l)
    in
    (* lay out the new index space: insertions at an anchor come first,
       then the anchor's replacement (or the anchor itself) *)
    let map = Array.make n (-1) in
    let entries : ((int -> bool) * int) list array = Array.make n [] in
    let pos = ref 0 in
    for pc = 0 to n - 1 do
      List.iter
        (fun i ->
          entries.(pc) <- entries.(pc) @ [ (i.via, !pos) ];
          pos := !pos + List.length i.code)
        ins_at.(pc);
      match repl.(pc) with
      | [] -> map.(pc) <- -1
      | l ->
          map.(pc) <- !pos;
          pos := !pos + List.length l
    done;
    let total = !pos in
    if total = 0 then invalid_arg "Rewrite.apply: rewrite deleted everything";
    (* a branch to a deleted pc falls forward to the next survivor; a
       branch into a fully deleted tail is parked on the last
       instruction (only unreachable code can do that) *)
    let rec newstart l =
      if l >= n then total - 1
      else if map.(l) >= 0 then map.(l)
      else newstart (l + 1)
    in
    let target ~src l =
      if l < 0 || l >= n then newstart l
      else
        let rec through = function
          | [] -> newstart l
          | (via, p) :: rest -> if via src then p else through rest
        in
        through entries.(l)
    in
    let retarget src (ins : Instr.t) : Instr.t =
      match ins with
      | Instr.Jmp l -> Instr.Jmp (target ~src l)
      | Instr.Bnz (c, l1, l2) -> Instr.Bnz (c, target ~src l1, target ~src l2)
      | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Load _
      | Instr.Store _ | Instr.Call _ | Instr.Ret _ | Instr.Intr _
      | Instr.Mark _ ->
          ins
    in
    let code = Array.make total (Instr.Mark 0) in
    let lines = Array.make total 0 in
    let regions = Array.make total (-1) in
    let emit pc ins =
      code.(!pos) <- ins;
      lines.(!pos) <- f.Prog.lines.(pc);
      regions.(!pos) <- f.Prog.regions.(pc);
      incr pos
    in
    pos := 0;
    for pc = 0 to n - 1 do
      List.iter (fun i -> List.iter (emit pc) i.code) ins_at.(pc);
      List.iter (fun ins -> emit pc (retarget pc ins)) repl.(pc)
    done;
    ( {
        f with
        Prog.code;
        lines;
        regions;
        nregs = Option.value ~default:f.Prog.nregs nregs;
      },
      map )
  end
