(** The four pattern-injection passes, grounded in the paper's six
    resilience patterns.  Every pass is a {e fault-free identity}: on
    an uncorrupted run the transformed program prints exactly the
    baseline's output (the guards compare equal values and pass), so
    hardened variants verify against the same baked reference.  Under
    a fault, the guards convert would-be silent data corruptions into
    traps ([1/0]), which the fault-manifestation model classifies as
    Crashed — the SWIFT-style detect-to-trap trade.

    {ul
    {- {!duplicate_compare} — selective instruction duplication with
       compare-and-trap on the top-K regions of {!Vuln.rank}: every
       arithmetic instruction in a selected region is recomputed into a
       fresh register and the two results compared bitwise;}
    {- {!accumulator_guard} — store verification on the accumulators
       found by {!Static_detect}'s reaching-defs slicer (the
       repeated-additions sites): after the accumulating store, the
       word is loaded back and compared against the register that was
       stored, catching corruption of the store's data path;}
    {- {!overwrite_fresh} — the automatic analogue of CG's hand-written
       [harden_dcl]: reused temporaries are split into fresh registers
       (one per def-use web, via reaching definitions), and registers
       that die at an instruction are overwritten with zero right after
       their last use.  This inserts no detector — it manufactures
       Dead Corrupted Location / Data Overwriting sites, so more flips
       land in values that are dead or immediately overwritten;}
    {- {!trunc_barrier} — truncation-style range barriers at region
       exits carrying FP state: after the last store of each
       double-typed variable in a region, the stored word is loaded
       back and trapped if its magnitude exceeds [1e100] — a value no
       fault-free run produces, but one bit flip in a high exponent bit
       does.  (NaNs compare false and pass the barrier; they surface in
       the verification phase instead.)}} *)

val duplicate_compare : Pass.t
val accumulator_guard : Pass.t
val overwrite_fresh : Pass.t
val trunc_barrier : Pass.t

val all : Pass.t list
(** Canonical pipeline order: [duplicate_compare] (selects regions on
    the unhardened ranking), then [accumulator_guard], then
    [trunc_barrier], then [overwrite_fresh] (renames and scrubs last,
    so the guard temporaries are scrubbed too). *)

val find : string -> Pass.t option
(** Look up by canonical name or short alias, case-insensitively. *)
