(* The four pattern-injection passes; see the mli for the design and
   the fault-free-identity contract each pass maintains.

   The detect-to-trap guard shared by the detector passes is

     eq  <- Eq x y        ; bitwise compare (Value.t is the raw pattern,
     one <- Const 1       ;  so doubles compare exactly and NaN = NaN)
     chk <- Div one eq    ; 1/1 fault-free; 1/0 traps under corruption

   which needs no extra control flow: integer division by zero traps,
   and the VM classifies the trap as Crashed. *)

let guard_code ~(x : Instr.reg) ~(y : Instr.reg) ~(eq : Instr.reg)
    ~(one : Instr.reg) ~(chk : Instr.reg) : Instr.t list =
  [
    Instr.Bin (Op.Eq, eq, x, y);
    Instr.Const (one, 1L);
    Instr.Bin (Op.Div, chk, one, eq);
  ]

(* -- generic splice-pass harness --------------------------------------- *)

(* What one pass does to one function: insertions to splice, the new
   register count, change records, and protective anchors given as
   (anchor pc, index into that anchor's After block). *)
type work = {
  w_inss : Splice.insertion list;
  w_nregs : int;
  w_changes : Pass.site_change list;
  w_considered : int;
  w_prot : (int * int) list;
}

let no_work (f : Prog.func) =
  {
    w_inss = [];
    w_nregs = f.Prog.nregs;
    w_changes = [];
    w_considered = 0;
    w_prot = [];
  }

let splice_pass ~name ~short ~doc
    (prepare : Pass.opts -> Prog.t -> Prog.func -> work) : Pass.t =
  let run (opts : Pass.opts) (p : Prog.t) : Pass.result =
    let maps : (string, int array) Hashtbl.t = Hashtbl.create 8 in
    let considered = ref 0 in
    let changes = ref [] in
    let prot = ref [] in
    let instrs_added = ref 0 in
    let regs_added = ref 0 in
    let worker = prepare opts p in
    let funcs =
      Array.map
        (fun (f : Prog.func) ->
          let w = worker f in
          considered := !considered + w.w_considered;
          changes := !changes @ w.w_changes;
          regs_added := !regs_added + (w.w_nregs - f.Prog.nregs);
          instrs_added :=
            !instrs_added
            + List.fold_left
                (fun acc (i : Splice.insertion) ->
                  acc + List.length i.Splice.code)
                0 w.w_inss;
          let f', map =
            Splice.apply { f with Prog.nregs = w.w_nregs } w.w_inss
          in
          Hashtbl.replace maps f.Prog.fname map;
          prot :=
            !prot
            @ List.map
                (fun (anchor, delta) ->
                  (f.Prog.fname, map.(anchor) + 1 + delta))
                w.w_prot;
          f')
        p.Prog.funcs
    in
    let rep : Pass.report =
      {
        pass_name = name;
        sites_considered = !considered;
        sites_changed = List.length !changes;
        instrs_added = !instrs_added;
        instrs_removed = 0;
        regs_added = !regs_added;
        changes = !changes;
        protective = !prot;
      }
    in
    {
      Pass.prog = { p with Prog.funcs };
      rep;
      remap =
        (fun ~fname ~pc ->
          match Hashtbl.find_opt maps fname with
          | Some m when pc >= 0 && pc < Array.length m -> m.(pc)
          | _ -> pc);
    }
  in
  { Pass.name; short; doc; run }

let change (f : Prog.func) pc note : Pass.site_change =
  {
    Pass.ch_func = f.Prog.fname;
    ch_pc = pc;
    ch_line = f.Prog.lines.(pc);
    ch_region = f.Prog.regions.(pc);
    ch_note = note;
  }

(* -- duplicate_compare -------------------------------------------------- *)

let duplicate_compare : Pass.t =
  splice_pass ~name:"duplicate-compare" ~short:"dup"
    ~doc:
      "duplicate arithmetic in the top-K Vuln.rank regions and trap on \
       result mismatch (SWIFT-style SDC detector)"
    (fun opts p ->
      (* region selection on the whole-program ranking, once *)
      let selected = Array.make (Array.length p.Prog.region_table) false in
      List.iteri
        (fun i (s : Vuln.region_score) ->
          if i < opts.Pass.top_k then selected.(s.Vuln.rid) <- true)
        (Vuln.rank p);
      fun (f : Prog.func) ->
        let w = ref (no_work f) in
        let nreg = ref f.Prog.nregs in
        Array.iteri
          (fun pc ins ->
            let rid = f.Prog.regions.(pc) in
            if rid >= 0 && rid < Array.length selected && selected.(rid) then
              let dup_with recompute d op_name =
                let dup = !nreg and eq = !nreg + 1 in
                let one = !nreg + 2 and chk = !nreg + 3 in
                nreg := !nreg + 4;
                (* the duplicate runs first so a dst-aliasing original
                   (r3 <- r3 + r1) still compares against the same
                   operand values *)
                let inss =
                  {
                    Splice.at = pc;
                    pos = Splice.Before;
                    code = [ recompute dup ];
                  }
                  :: {
                       Splice.at = pc;
                       pos = Splice.After;
                       code = guard_code ~x:d ~y:dup ~eq ~one ~chk;
                     }
                  :: (!w).w_inss
                in
                w :=
                  {
                    !w with
                    w_inss = inss;
                    w_nregs = !nreg;
                    w_changes =
                      change f pc
                        (Printf.sprintf "duplicated %s into r%d, trap on \
                                         mismatch" op_name dup)
                      :: (!w).w_changes;
                    w_prot = (pc, 0) :: (!w).w_prot;
                  }
              in
              match ins with
              | Instr.Bin (op, d, a, b) ->
                  w := { !w with w_considered = (!w).w_considered + 1 };
                  dup_with
                    (fun dup -> Instr.Bin (op, dup, a, b))
                    d (Op.bin_to_string op)
              | Instr.Un (op, d, a) ->
                  w := { !w with w_considered = (!w).w_considered + 1 };
                  dup_with
                    (fun dup -> Instr.Un (op, dup, a))
                    d (Op.un_to_string op)
              | _ -> ())
          f.Prog.code;
        {
          !w with
          w_inss = List.rev (!w).w_inss;
          w_changes = List.rev (!w).w_changes;
          w_prot = List.rev (!w).w_prot;
        })

(* -- accumulator_guard -------------------------------------------------- *)

let accumulator_guard : Pass.t =
  splice_pass ~name:"accumulator-guard" ~short:"acc"
    ~doc:
      "load back and re-compare every accumulating store found by the \
       reaching-defs slicer (repeated-additions sites)"
    (fun _opts p ->
      let sites : (string, int list) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (s : Static_detect.site) ->
          let prev =
            Option.value ~default:[]
              (Hashtbl.find_opt sites s.Static_detect.fname)
          in
          Hashtbl.replace sites s.Static_detect.fname
            (s.Static_detect.pc :: prev))
        (Static_detect.analyze p).Static_detect.repeated_adds;
      fun (f : Prog.func) ->
        match Hashtbl.find_opt sites f.Prog.fname with
        | None -> no_work f
        | Some pcs ->
            let w = ref (no_work f) in
            let nreg = ref f.Prog.nregs in
            List.iter
              (fun pc ->
                w := { !w with w_considered = (!w).w_considered + 1 };
                match f.Prog.code.(pc) with
                | Instr.Store (src, addr) ->
                    (* Flip_write on a store corrupts the memory word but
                       not the source register, so loading the word back
                       and comparing against [src] is a sound check of
                       the store's data path. *)
                    let lb = !nreg and eq = !nreg + 1 in
                    let one = !nreg + 2 and chk = !nreg + 3 in
                    nreg := !nreg + 4;
                    w :=
                      {
                        !w with
                        w_nregs = !nreg;
                        w_inss =
                          {
                            Splice.at = pc;
                            pos = Splice.After;
                            code =
                              Instr.Load (lb, addr)
                              :: guard_code ~x:lb ~y:src ~eq ~one ~chk;
                          }
                          :: (!w).w_inss;
                        w_changes =
                          change f pc "accumulating store verified by \
                                       load-back compare"
                          :: (!w).w_changes;
                        (* the compare, one past the load-back *)
                        w_prot = (pc, 1) :: (!w).w_prot;
                      }
                | _ -> ())
              (List.sort_uniq compare pcs);
            {
              !w with
              w_inss = List.rev (!w).w_inss;
              w_changes = List.rev (!w).w_changes;
              w_prot = List.rev (!w).w_prot;
            })

(* -- trunc_barrier ------------------------------------------------------ *)

(* No fault-free value in the study programs approaches 1e100, but a
   flip in a high exponent bit of any double overshoots it.  Fgt is
   false on NaN, so NaNs pass the barrier and are left to the
   verification phase. *)
let barrier_bound = 1e100

let trunc_barrier : Pass.t =
  splice_pass ~name:"trunc-barrier" ~short:"trunc"
    ~doc:
      "range barriers on region-exit FP state: trap when a stored \
       double's magnitude exceeds 1e100 (only a corrupted exponent \
       gets there)"
    (fun _opts p ->
      fun (f : Prog.func) ->
        let n = Array.length f.Prog.code in
        if n = 0 then no_work f
        else begin
          let rd = Reaching.compute f in
          (* last store per (region, resolved F64 word) *)
          let last : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
          let considered = ref 0 in
          Array.iteri
            (fun pc ins ->
              match ins with
              | Instr.Store (_, addr_reg) -> (
                  let rid = f.Prog.regions.(pc) in
                  if rid >= 0 then
                    match Reaching.const_addr rd ~pc addr_reg with
                    | Some addr
                      when Prog.type_of_addr p addr = Some Ty.F64 ->
                        incr considered;
                        Hashtbl.replace last (rid, addr) pc
                    | Some _ | None -> ())
              | _ -> ())
            f.Prog.code;
          let picks =
            Hashtbl.fold (fun _ pc acc -> pc :: acc) last []
            |> List.sort_uniq compare
          in
          let w = ref { (no_work f) with w_considered = !considered } in
          let nreg = ref f.Prog.nregs in
          List.iter
            (fun pc ->
              match f.Prog.code.(pc) with
              | Instr.Store (_, addr_reg) ->
                  let lb = !nreg and ab = !nreg + 1 and bound = !nreg + 2 in
                  let gt = !nreg + 3 and z = !nreg + 4 in
                  let eq = !nreg + 5 and one = !nreg + 6 and chk = !nreg + 7 in
                  nreg := !nreg + 8;
                  w :=
                    {
                      !w with
                      w_nregs = !nreg;
                      w_inss =
                        {
                          Splice.at = pc;
                          pos = Splice.After;
                          code =
                            [
                              Instr.Load (lb, addr_reg);
                              Instr.Un (Op.Fabs, ab, lb);
                              Instr.Const (bound, Value.of_float barrier_bound);
                              Instr.Bin (Op.Fgt, gt, ab, bound);
                              Instr.Const (z, 0L);
                            ]
                            @ guard_code ~x:gt ~y:z ~eq ~one ~chk;
                        }
                        :: (!w).w_inss;
                      w_changes =
                        change f pc
                          (Printf.sprintf
                             "range barrier (|x| <= %g) after region's \
                              last FP store"
                             barrier_bound)
                        :: (!w).w_changes;
                      (* the Fgt comparison *)
                      w_prot = (pc, 3) :: (!w).w_prot;
                    }
              | _ -> ())
            picks;
          {
            !w with
            w_inss = List.rev (!w).w_inss;
            w_changes = List.rev (!w).w_changes;
            w_prot = List.rev (!w).w_prot;
          }
        end)

(* -- overwrite_fresh ----------------------------------------------------- *)

(* Def-use webs per register via reaching definitions: two defs of r
   belong to the same web iff some use of r can see both.  Webs with no
   sentinel definition (uninit/param) are fully defined inside the
   function on every path, so they can be renamed to a fresh register
   without changing any observable value.  After renaming, registers
   that die at an instruction are overwritten with zero right after
   their last use — manufacturing Dead Corrupted Location sites: a flip
   landing in a scrubbed register (or in the freshly-split short web it
   no longer shares) is dead on arrival. *)

module UF = struct
  type key = int * int (* register, def site (pc or sentinel) *)

  type t = (key, key) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find (t : t) (k : key) : key =
    match Hashtbl.find_opt t k with
    | None ->
        Hashtbl.replace t k k;
        k
    | Some p when p = k -> k
    | Some p ->
        let r = find t p in
        Hashtbl.replace t k r;
        r

  let union (t : t) (a : key) (b : key) : unit =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb
end

type web = {
  web_reg : int;          (* original register *)
  web_min : int;          (* earliest real def pc, or max_int *)
  web_sentinel : bool;    (* reaches a use straight from entry *)
  mutable web_new : int;  (* assigned register *)
}

let overwrite_fresh_fun (f : Prog.func) :
    Prog.func * int array * Pass.site_change list * (int * int) list * int * int
    =
  let n = Array.length f.Prog.code in
  if n = 0 then (f, [||], [], [], 0, 0)
  else begin
    let rd = Reaching.compute f in
    let uf = UF.create () in
    Array.iteri
      (fun pc ins ->
        List.iter (fun r -> ignore (UF.find uf (r, pc))) (Cfg.defs ins);
        List.iter
          (fun r ->
            match Reaching.defs_of rd ~pc r with
            | [] -> ()
            | d :: rest ->
                ignore (UF.find uf (r, d));
                List.iter (fun d' -> UF.union uf (r, d) (r, d')) rest)
          (Cfg.uses ins))
      f.Prog.code;
    (* gather webs by root *)
    let webs : ((int * int), web) Hashtbl.t = Hashtbl.create 32 in
    let keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) uf [] |> List.sort_uniq compare
    in
    List.iter
      (fun ((r, site) as k) ->
        let root = UF.find uf k in
        let w =
          match Hashtbl.find_opt webs root with
          | Some w -> w
          | None ->
              let w =
                {
                  web_reg = r;
                  web_min = max_int;
                  web_sentinel = false;
                  web_new = r;
                }
              in
              Hashtbl.replace webs root w;
              w
        in
        if site < 0 then
          Hashtbl.replace webs root { w with web_sentinel = true }
        else if site < w.web_min then
          Hashtbl.replace webs root { w with web_min = site })
      keys;
    (* assign registers: sentinel webs keep theirs; the first real web
       keeps the original only when no sentinel web claims it *)
    let by_reg : (int, (int * int) list) Hashtbl.t = Hashtbl.create 32 in
    Hashtbl.iter
      (fun root (w : web) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_reg w.web_reg) in
        Hashtbl.replace by_reg w.web_reg (root :: prev))
      webs;
    let fresh = ref f.Prog.nregs in
    let changes = ref [] in
    let renamed = ref 0 in
    Hashtbl.iter
      (fun reg roots ->
        let ws = List.map (Hashtbl.find webs) roots in
        let has_sentinel = List.exists (fun w -> w.web_sentinel) ws in
        let real =
          List.filter (fun (w : web) -> not w.web_sentinel) ws
          |> List.sort (fun a b -> compare a.web_min b.web_min)
        in
        List.iteri
          (fun i (w : web) ->
            if has_sentinel || i > 0 then begin
              w.web_new <- !fresh;
              incr fresh;
              incr renamed;
              if w.web_min >= 0 && w.web_min < n then
                changes :=
                  change f w.web_min
                    (Printf.sprintf "split web of r%d into fresh r%d" reg
                       w.web_new)
                  :: !changes
            end)
          real)
      by_reg;
    let web_total = Hashtbl.length webs in
    (* rewrite registers *)
    let def_reg pc r = (Hashtbl.find webs (UF.find uf (r, pc))).web_new in
    let use_reg pc r =
      match Reaching.defs_of rd ~pc r with
      | [] -> r (* unreachable code: leave it alone *)
      | d :: _ -> (Hashtbl.find webs (UF.find uf (r, d))).web_new
    in
    let code =
      Array.mapi
        (fun pc (ins : Instr.t) ->
          let u r = use_reg pc r and d r = def_reg pc r in
          match ins with
          | Instr.Const (x, v) -> Instr.Const (d x, v)
          | Instr.Bin (op, x, a, b) -> Instr.Bin (op, d x, u a, u b)
          | Instr.Un (op, x, a) -> Instr.Un (op, d x, u a)
          | Instr.Load (x, a) -> Instr.Load (d x, u a)
          | Instr.Store (s, a) -> Instr.Store (u s, u a)
          | Instr.Jmp l -> Instr.Jmp l
          | Instr.Bnz (c, l1, l2) -> Instr.Bnz (u c, l1, l2)
          | Instr.Call (fi, args, ret) ->
              Instr.Call (fi, Array.map u args, Option.map d ret)
          | Instr.Ret r -> Instr.Ret (Option.map u r)
          | Instr.Intr (i, args, ret) ->
              Instr.Intr (i, Array.map u args, Option.map d ret)
          | Instr.Mark m -> Instr.Mark m)
        f.Prog.code
    in
    let f1 = { f with Prog.code; nregs = !fresh } in
    (* scrub registers at their death points *)
    let cfg = Cfg.build f1 in
    let lv = Liveness.compute ~cfg f1 in
    let inss = ref [] in
    let prot = ref [] in
    let scrubs = ref 0 in
    Array.iteri
      (fun pc ins ->
        if not (Cfg.is_terminator ins) then begin
          let defs = Cfg.defs ins in
          let dying =
            Cfg.uses ins
            |> List.sort_uniq compare
            |> List.filter (fun r ->
                   (not (Liveness.is_live_after lv ~pc r))
                   && not (List.mem r defs))
          in
          if dying <> [] then begin
            inss :=
              {
                Splice.at = pc;
                pos = Splice.After;
                code = List.map (fun r -> Instr.Const (r, 0L)) dying;
              }
              :: !inss;
            List.iteri (fun j _ -> prot := (pc, j) :: !prot) dying;
            scrubs := !scrubs + List.length dying
          end
        end)
      f1.Prog.code;
    let f2, map = Splice.apply f1 (List.rev !inss) in
    let changes =
      if !scrubs > 0 then
        change f 0
          (Printf.sprintf "scrubbed %d dead register(s) after their last \
                           use" !scrubs)
        :: List.rev !changes
      else List.rev !changes
    in
    (f2, map, changes, List.rev !prot, web_total, !renamed)
  end

let overwrite_fresh : Pass.t =
  let run (_opts : Pass.opts) (p : Prog.t) : Pass.result =
    let maps : (string, int array) Hashtbl.t = Hashtbl.create 8 in
    let considered = ref 0 in
    let changed = ref 0 in
    let changes = ref [] in
    let prot = ref [] in
    let instrs_added = ref 0 in
    let regs_added = ref 0 in
    let funcs =
      Array.map
        (fun (f : Prog.func) ->
          let f', map, chs, ps, webs, renamed = overwrite_fresh_fun f in
          Hashtbl.replace maps f.Prog.fname map;
          considered := !considered + webs;
          changed := !changed + renamed + List.length ps;
          changes := !changes @ chs;
          prot :=
            !prot
            @ List.map
                (fun (anchor, delta) ->
                  (f.Prog.fname, map.(anchor) + 1 + delta))
                ps;
          instrs_added :=
            !instrs_added + (Array.length f'.Prog.code - Array.length f.Prog.code);
          regs_added := !regs_added + (f'.Prog.nregs - f.Prog.nregs);
          f')
        p.Prog.funcs
    in
    let rep : Pass.report =
      {
        pass_name = "overwrite-fresh";
        sites_considered = !considered;
        sites_changed = !changed;
        instrs_added = !instrs_added;
        instrs_removed = 0;
        regs_added = !regs_added;
        changes = !changes;
        protective = !prot;
      }
    in
    {
      Pass.prog = { p with Prog.funcs };
      rep;
      remap =
        (fun ~fname ~pc ->
          match Hashtbl.find_opt maps fname with
          | Some m when pc >= 0 && pc < Array.length m -> m.(pc)
          | _ -> pc);
    }
  in
  {
    Pass.name = "overwrite-fresh";
    short = "fresh";
    doc =
      "split reused temporaries into fresh registers (one per def-use \
       web) and overwrite dying registers with zero after their last \
       use (automatic harden_dcl)";
    run;
  }

(* -- registry ------------------------------------------------------------ *)

let all : Pass.t list =
  [ duplicate_compare; accumulator_guard; trunc_barrier; overwrite_fresh ]

let find (name : string) : Pass.t option =
  let name = String.lowercase_ascii name in
  List.find_opt
    (fun (p : Pass.t) ->
      String.equal name p.Pass.name || String.equal name p.Pass.short)
    all
