(** The hardening pass manager: named IR-to-IR passes with site
    selectors, per-pass change reports, and a mandatory post-pipeline
    {!Verify} gate so no transformed program ships broken IR.

    A pass maps a whole [Prog.t] to a rewritten one and reports what it
    did: the sites it considered, the sites it changed, and — for the
    protective-site bookkeeping that feeds {!Vuln.rank}'s
    [extra_protective] — the [(function, pc)] positions of the guards
    it inserted, in its {e output} program's coordinates.  Because a
    later pass renumbers those positions again, every pass also returns
    a [remap] function; {!run_pipeline} threads earlier reports through
    it so the final report list is in final-program coordinates. *)

type opts = {
  top_k : int;
      (** regions taken from the top of {!Vuln.rank} by the selective
          passes (duplicate_compare) *)
}

val default_opts : opts
(** [top_k = 3]. *)

(** One site a pass changed, in the pass's input coordinates. *)
type site_change = {
  ch_func : string;
  ch_pc : int;      (** pc in the pass's input program *)
  ch_line : int;
  ch_region : int;  (** region id, or -1 *)
  ch_note : string; (** human-readable description of the rewrite *)
}

type report = {
  pass_name : string;
  sites_considered : int;  (** candidate sites the selector offered *)
  sites_changed : int;
  instrs_added : int;
  instrs_removed : int;  (** instructions deleted (optimizer passes) *)
  regs_added : int;
  changes : site_change list;
  protective : (string * int) list;
      (** inserted guard sites, [(fname, pc)]; coordinates are kept
          current by {!run_pipeline} as later passes renumber code *)
}

type result = {
  prog : Prog.t;
  rep : report;
  remap : fname:string -> pc:int -> int;
      (** where an input-program pc landed in [prog] *)
}

type t = {
  name : string;   (** canonical name, e.g. "duplicate-compare" *)
  short : string;  (** terse alias accepted by [--passes], e.g. "dup" *)
  doc : string;
  run : opts -> Prog.t -> result;
}

exception Verify_failed of {
  passes : string list;
  diags : Verify.diag list;  (** error-severity diagnostics only *)
}
(** The post-pipeline gate found broken IR.  This is a bug in a pass,
    never a property of the input program (pipelines only run on
    programs that verify to begin with). *)

val run_pipeline : ?opts:opts -> t list -> Prog.t -> Prog.t * report list
(** Run the passes in order; [Prog.validate] after each, then the
    {!Verify} gate over the final program.  Reports come back in pass
    order with [protective] remapped to final-program coordinates.
    @raise Verify_failed on any error-severity diagnostic. *)

val protective_sites : report list -> (string * int) list
(** All guard sites of a pipeline's reports, for
    [Vuln.rank ~extra_protective]. *)

val pp_report : Format.formatter -> report -> unit
(** One summary line plus up to a handful of sample changes. *)
