(** The automatic-hardening facade: parse a pass spec, run the
    pipeline, and package a registered app's auto-hardened variant.

    A pass spec is ["all"] or a comma-separated list of pass names /
    short aliases, e.g. ["dup,fresh"] or
    ["duplicate-compare,trunc-barrier"]; passes always run in the
    canonical order of {!Passes.all} regardless of spec order. *)

val parse_spec : string -> (Pass.t list, string) result
(** [Error msg] names the unknown pass and lists the valid names. *)

val spec_names : Pass.t list -> string
(** Canonical printable spec: ["all"] for the full set, else the short
    aliases joined with [+] (e.g. ["dup+fresh"]) — also the suffix
    {!app_variant} appends to the app name. *)

val harden :
  ?opts:Pass.opts -> Pass.t list -> Prog.t -> Prog.t * Pass.report list
(** {!Pass.run_pipeline}.  @raise Pass.Verify_failed as it does. *)

val transform : ?opts:Pass.opts -> Pass.t list -> Prog.t -> Prog.t
(** [harden] without the reports. *)

val ranking_after :
  Prog.t -> Pass.report list -> Vuln.region_score list
(** {!Vuln.rank} of a hardened program with the pipeline's inserted
    guard sites supplied as [extra_protective], so the ranking sees the
    new protection. *)

val app_variant : ?opts:Pass.opts -> ?passes:Pass.t list -> App.t -> App.t
(** The auto-hardened variant of a registered app: same sources, same
    two-phase build, but the compiled program is rewritten by the
    pipeline before the reference run.  Named
    [base.name ^ "@" ^ spec_names passes] (default passes:
    {!Passes.all}), so it caches and runs everywhere plain apps do. *)
