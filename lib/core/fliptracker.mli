(** FlipTracker — fine-grained tracking of error propagation and
    natural resilience in HPC programs.

    The one-call entry points over the full pipeline; see the
    subsystem libraries for the pieces (IR: [Ty]/[Value]/[Loc]/[Op]/
    [Instr]/[Prog]; language: [Ast]/[Compile]; execution:
    [Machine]/[Trace]; static analysis: [Cfg]/[Dataflow]/[Reaching]/
    [Liveness]/[Verify]/[Vuln]; analyses: [Region]/[Access]/[Align]/[Acl]/
    [Dddg]/[Tolerance]/[Trace_io]/[Export]; faults:
    [Rng]/[Stats]/[Campaign]; resilient execution:
    [Csexp]/[Journal]/[Watchdog]/[Pool]/[Executor]; patterns:
    [Pattern]/[Static_detect]/
    [Dynamic_detect]/[Rates]/[Weighted_rates]; prediction:
    [Linalg]/[Regression]; benchmarks: [App]/[Registry]; MPI:
    [Comm]/[Runner]/[Demo]; experiments: [Experiments]/[Effort]/
    [Ablation]). *)

val resolve_app : string -> (App.t, string) result
(** The shared CLI app lookup: a registry name (case-insensitive,
    structured suggestions in the error message); ["NAME@SPEC"] for
    the auto-hardened variant of [NAME] under the harden pass spec
    [SPEC] (["all"], or pass names/aliases joined with [+] or [,]);
    or ["NAME@opt"] / ["NAME@opt:SPEC"] for the optimized variant
    under the analysis-gated optimizer pipeline ({!Opt}). *)

type injection_report = {
  fault : Machine.fault;
  outcome : Machine.outcome;
  verified : bool;  (** did the app's own verification accept it? *)
  acl : Acl.result;
  patterns : Dynamic_detect.region_patterns list;
}

val inject_and_analyze : App.t -> Machine.fault -> injection_report
(** One fault, full analysis: outcome classification, the ACL series,
    and the resilience patterns observed per region. *)

val measure_resilience_report :
  ?cfg:Campaign.config -> ?exec:Campaign.exec -> App.t -> Campaign.run_report
(** Whole-program campaign on the resilient executor ([exec]: worker
    domains, journal + resume, wall-clock watchdog, early stopping),
    with the execution provenance alongside the counts. *)

val measure_resilience :
  ?cfg:Campaign.config -> ?exec:Campaign.exec -> App.t -> Campaign.counts
(** Success rate under uniform whole-program injection (Equation 1). *)

val pattern_rates : App.t -> Rates.t
(** The six pattern-rate features of the prediction model. *)

val pp_injection_report : Format.formatter -> injection_report -> unit
