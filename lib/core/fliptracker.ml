(** FlipTracker — fine-grained tracking of error propagation and
    natural resilience in HPC programs.

    This facade groups the library's subsystems and offers the one-call
    entry points most users need.  The full pipeline is:

    {v
    mini-C program --Compile--> IR --Machine(+Tracer)--> dynamic trace
        |                                                     |
        |  fault injection (Campaign)                         |
        v                                                     v
    faulty runs --Align/Acl--> alive-corrupted-location series
                                    |
                                    v
              resilience patterns (Pattern/Dynamic_detect)
                                    |
                                    v
              resilience prediction (Rates + Regression)
    v}

    Subsystem guide:
    {ul
    {- IR: {!Ty}, {!Value}, {!Loc}, {!Op}, {!Instr}, {!Prog}}
    {- language + compiler: {!Ast}, {!Compile}}
    {- execution: {!Machine}, {!Trace}}
    {- static analysis: {!Cfg}, {!Dataflow}, {!Reaching}, {!Liveness},
       {!Verify}, {!Vuln}}
    {- analyses: {!Region}, {!Access}, {!Align}, {!Acl}, {!Dddg},
       {!Tolerance}}
    {- fault injection: {!Rng}, {!Stats}, {!Campaign}}
    {- resilient execution: {!Csexp}, {!Journal}, {!Watchdog}, {!Pool},
       {!Executor}}
    {- patterns: {!Pattern}, {!Static_detect}, {!Dynamic_detect},
       {!Rates}}
    {- prediction: {!Linalg}, {!Regression}}
    {- benchmarks: {!App}, {!Registry} and the ten program modules}
    {- simulated MPI: {!Comm}, {!Runner}, {!Demo}}
    {- experiment drivers: {!Experiments}, {!Effort}}} *)

(** Resolve an app name as every CLI subcommand does: a plain registry
    name finds the registered app (case-insensitively, with structured
    near-match suggestions on failure); ["NAME@SPEC"] — e.g.
    ["CG@all"] or ["mg@dup+fresh"] — builds the auto-hardened variant
    of [NAME] with the pass spec [SPEC] ([+] or [,] separated); and
    ["NAME@opt"] / ["NAME@opt:SPEC"] — e.g. ["IS@opt"] or
    ["cg@opt:fold+dce"] — builds the optimized variant under the
    analysis-gated optimizer pipeline.  Both kinds of variant run
    everywhere plain apps do. *)
let resolve_app (name : string) : (App.t, string) result =
  let lookup n =
    match Registry.find n with
    | a -> Ok a
    | exception Registry.Unknown_app { name; suggestions; known } ->
        Error
          (Printf.sprintf "unknown app %S%s\nknown apps: %s" name
             (match suggestions with
             | s :: _ -> Printf.sprintf " (did you mean %s?)" s
             | [] -> "")
             (String.concat ", " known))
  in
  match String.index_opt name '@' with
  | None -> lookup name
  | Some i -> (
      let base = String.sub name 0 i in
      let raw = String.sub name (i + 1) (String.length name - i - 1) in
      let opt_spec =
        if String.lowercase_ascii raw = "opt" then Some "all"
        else if
          String.length raw > 4
          && String.lowercase_ascii (String.sub raw 0 4) = "opt:"
        then Some (String.sub raw 4 (String.length raw - 4))
        else None
      in
      match opt_spec with
      | Some spec ->
          Result.bind (lookup base) (fun app ->
              Result.map
                (fun passes -> Opt.app_variant ~passes app)
                (Opt.parse_spec spec))
      | None ->
          let spec =
            String.map (fun c -> if Char.equal c '+' then ',' else c) raw
          in
          Result.bind (lookup base) (fun app ->
              Result.map
                (fun passes -> Harden.app_variant ~passes app)
                (Harden.parse_spec spec)))

(** Everything known about one fault injected into one program. *)
type injection_report = {
  fault : Machine.fault;
  outcome : Machine.outcome;
  verified : bool;
  acl : Acl.result;
  patterns : Dynamic_detect.region_patterns list;
}

(** Run one fault injection against [app] with full tracing and
    analysis: outcome classification, the ACL series, and the
    resilience patterns observed, per region. *)
let inject_and_analyze (app : App.t) (fault : Machine.fault) :
    injection_report =
  let clean, clean_trace = App.trace app in
  let budget = 10 * clean.Machine.instructions in
  let result, faulty = App.trace_with_fault app fault ~budget in
  let acl = Acl.analyze ~fault ~clean:clean_trace ~faulty () in
  {
    fault;
    outcome = result.Machine.outcome;
    verified = App.verified result.Machine.output;
    acl;
    patterns = Dynamic_detect.of_acl acl;
  }

(** Success rate of [app] under uniform whole-program injection, with
    the full execution provenance (planned vs completed trials, early
    stopping, resume, wall time).  [exec] selects the resilient
    executor's knobs: worker domains, journal + resume, wall-clock
    watchdog, early stopping. *)
let measure_resilience_report ?(cfg = Campaign.default_config)
    ?(exec = Campaign.default_exec) (app : App.t) : Campaign.run_report =
  let clean, trace = App.trace app in
  let prog = App.program app in
  let target = Campaign.whole_program_target prog trace in
  Campaign.run_report prog ~verify:(App.verify app)
    ~clean_instructions:clean.Machine.instructions ~cfg ~exec target

(** Success rate of [app] under uniform whole-program injection. *)
let measure_resilience ?(cfg = Campaign.default_config)
    ?(exec = Campaign.default_exec) (app : App.t) : Campaign.counts =
  (measure_resilience_report ~cfg ~exec app).Campaign.counts

(** The six pattern rates of [app] (features of the prediction model). *)
let pattern_rates (app : App.t) : Rates.t =
  let _, trace = App.trace app in
  Rates.compute trace (Access.build trace)

(** Pretty-print an injection report (for quick interactive use). *)
let pp_injection_report ppf (r : injection_report) =
  Fmt.pf ppf "@[<v>fault: %s@,outcome: %s, verified: %b@,"
    (Machine.fault_to_string r.fault)
    (match r.outcome with
    | Machine.Finished -> "finished"
    | Machine.Trapped m -> "crashed (" ^ m ^ ")"
    | Machine.Budget_exceeded -> "hung")
    r.verified;
  Fmt.pf ppf "ACL peak %d, %d deaths, %d maskings%s@,"
    r.acl.Acl.peak
    (List.length r.acl.Acl.deaths)
    (List.length r.acl.Acl.maskings)
    (match r.acl.Acl.divergence with
    | Some i -> Printf.sprintf ", control diverged at event %d" i
    | None -> "");
  List.iter
    (fun rp -> Fmt.pf ppf "%a@," Dynamic_detect.pp rp)
    r.patterns;
  Fmt.pf ppf "@]"
