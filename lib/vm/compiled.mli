(** Compiled (non-tracing) execution backend.

    A one-time closure compilation of a {!Prog.t}: each instruction
    becomes a pre-resolved thunk (operands, branch targets, opcode
    semantics, fault/budget/tick checks specialized at compile time),
    so campaign trials pay no per-step instruction dispatch and
    allocate no trace events.  Bit-identical to {!Machine.run} on the
    fixed seq contract — outcome, output, final memory, instruction
    and iteration counts, and fault firing all agree — for every
    configuration {!supported} accepts.  Configurations it rejects
    (tracing, sinks, MPI hooks, checkpoint/rollback) must go to the
    interpreter; {!Backend} does that fallback automatically. *)

type plan
(** A program compiled to arrays of instruction thunks.  Pure and
    reusable: one plan serves any number of concurrent runs. *)

val compile : Prog.t -> plan
(** Compile unconditionally, bypassing the cache (tests, one-shot
    tools). *)

val plan_for : Prog.t -> plan
(** The cached entry point: content-addressed on the program (digest
    of its marshaled form) with a physical-identity fast path, safe
    under concurrent domains.  Campaigns compile each program once. *)

val prog : plan -> Prog.t
(** The program a plan was compiled from. *)

val supported : Machine.config -> bool
(** [true] iff the configuration carries no trace, no sink, no MPI
    hooks and no recovery — the envelope within which [run] is
    bit-identical to the interpreter. *)

val run : plan -> Machine.config -> Machine.result
(** Execute.  Faults, budgets, ticks, iteration marks and the trap
    taxonomy behave exactly as in {!Machine.run}; [restores] is 0.
    @raise Invalid_argument if the config is not {!supported} —
    callers decide the fallback, this module never silently changes
    semantics. *)
