(** The FlipTracker virtual machine: an IR interpreter with optional
    instruction tracing (the LLVM-Tracer substitute), single-bit fault
    hooks (the FlipIt substitute), MPI hooks, and the crash model of
    the paper's fault-manifestation taxonomy. *)

type fault =
  | Flip_write of { seq : int; bit : int }
      (** flip [bit] of the value written by dynamic instruction [seq] *)
  | Flip_mem of { seq : int; addr : int; bit : int }
      (** flip [bit] of [mem.(addr)] just before instruction [seq] runs
          (region-entry input injections) *)
  | Mask_write of { seq : int; and_mask : int64; or_mask : int64; xor_mask : int64 }
      (** generalized corruption of the value written by dynamic
          instruction [seq]: [((v land and) lor or) lxor xor].  Encodes
          multi-bit upsets (xor), stuck-at-0 (and) and stuck-at-1 (or). *)
  | Mask_mem of {
      seq : int;
      addr : int;
      and_mask : int64;
      or_mask : int64;
      xor_mask : int64;
    }  (** the memory-resident counterpart of [Mask_write] *)
  | Cache_fault of {
      seq : int;
      geom : Cache_model.geometry;
      loc : Cache_model.loc;
      and_mask : int64;
      or_mask : int64;
      xor_mask : int64;
    }
      (** corrupt one cache metadata field (tag/valid/dirty) or data
          word just before instruction [seq] runs.  Arming this fault
          routes every memory access through a write-back
          {!Cache_model.t} of [geom]; the cache is transparent until
          the corruption fires, so the pre-fault execution matches an
          uncached run exactly.  Interpreter-only: the compiled backend
          reports these configs unsupported and [Backend] falls back. *)

val apply_masks :
  int64 -> and_mask:int64 -> or_mask:int64 -> xor_mask:int64 -> int64
(** [((v land and_mask) lor or_mask) lxor xor_mask] — the corruption
    the mask faults apply, exposed for tests and fault-model sampling. *)

val fault_to_string : fault -> string
(** Human-readable one-line description of a fault (for reports). *)

type outcome =
  | Finished
  | Trapped of string  (** segfault, arithmetic trap, stack overflow *)
  | Budget_exceeded    (** hang, detected by the instruction budget *)

type recover = {
  max_restores : int;
      (** rollbacks allowed before the trap is allowed to escape *)
  snapshot_interval : int;
      (** minimum dynamic instructions between two snapshots: bounds
          the full-copy checkpoint cost on region-dense programs *)
}

val default_recover : recover
(** 3 restores, 50k-instruction snapshot interval. *)

type mpi_hooks = {
  rank : int;
  size : int;
  send : dest:int -> tag:int -> Value.t -> unit;
  recv : src:int -> tag:int -> Value.t;
  allreduce_sum : Value.t -> Value.t;
  barrier : unit -> unit;
}

type config = {
  budget : int;  (** max dynamic instructions before declaring a hang *)
  fault : fault option;
  trace : Trace.t option;  (** retained trace, for the analyses *)
  sink : (Trace.event -> unit) option;
      (** streaming alternative: each event is passed to the callback
          and not retained, like a tracer writing to a file *)
  iter_mark : int;  (** mark id delimiting main-loop iterations, or -1 *)
  mpi : mpi_hooks option;
  tick : (unit -> unit) option;
      (** called once per dynamic instruction with nothing allocated —
          the hook wall-clock watchdogs use; exceptions it raises
          propagate to the caller unclassified *)
  recover : recover option;
      (** checkpoint/rollback: snapshot the entry frame at region
          boundaries (rate-limited by [snapshot_interval]); a trap
          escaping to the entry frame restores the last snapshot
          instead of crashing, up to [max_restores] times.  The dynamic
          instruction counter is {e not} rolled back, so a seq-keyed
          transient fault never re-fires on replay; [Budget] and
          watchdog timeouts are never caught — rollback recovers traps,
          not hangs. *)
}

val default_config : config
(** No fault, no tracing, no MPI, no recovery, a 5e8-instruction
    budget. *)

type result = {
  outcome : outcome;
  instructions : int;
  output : string;     (** accumulated formatted prints *)
  mem : int64 array;   (** final memory image *)
  iterations : int;    (** main-loop iterations observed *)
  restores : int;      (** checkpoint rollbacks taken (0 without [recover]) *)
}

exception Budget
(** Raised internally when the instruction budget is exhausted;
    exposed so alternative execution backends (the compiled backend)
    can classify it exactly like the interpreter does. *)

exception Vm_trap of string
(** Raised internally on memory traps, stack overflow, and bad
    intrinsic usage; exposed for alternative execution backends. *)

val max_call_depth : int
(** Call depth above which the VM reports a stack overflow. *)

val randlc_step : float -> float -> float * float
(** One step of the NPB 46-bit linear congruential generator:
    [(new_state, uniform_in_0_1)]. *)

val format_output : string -> Value.t list -> string
(** Render a C-style format ([%d %x %e %f %g] with flags/width/
    precision).  Limited-precision float formats are where the Data
    Truncation pattern manifests on output. *)

val run : Prog.t -> config -> result
(** Execute the program.  Never raises on faulty behavior: traps,
    hangs, and wild accesses are classified in [outcome]. *)

val run_plain : ?budget:int -> Prog.t -> result
(** Fault-free, untraced execution. *)

val run_traced :
  ?budget:int ->
  ?iter_mark:int ->
  ?fault:fault ->
  Prog.t ->
  result * Trace.t
(** Execution with a fresh retained trace. *)

val run_sink :
  ?budget:int ->
  ?iter_mark:int ->
  ?fault:fault ->
  sink:(Trace.event -> unit) ->
  Prog.t ->
  result
(** Execution streaming each event into [sink] without retaining it:
    the constant-memory counterpart of [run_traced]. *)
