(** The FlipTracker virtual machine.

    Executes an IR program with three orthogonal extensions over a plain
    interpreter:
    {ul
    {- an optional {e tracer} that records one {!Trace.event} per
       executed instruction (the LLVM-Tracer substitute);}
    {- an optional {e fault}: a single-bit flip applied either to the
       value written by the n-th dynamic instruction, or to a memory
       word when the dynamic instruction counter reaches n (used for
       region-entry input injections);}
    {- optional {e MPI hooks} connecting the MPI intrinsics to the
       simulated runtime of [ft_mpi].}}

    Crashes of the fault-manifestation model are detected here: memory
    traps, arithmetic traps, stack overflow, and hangs (instruction
    budget exceeded). *)

type fault =
  | Flip_write of { seq : int; bit : int }
      (** flip [bit] of the value written by dynamic instruction [seq] *)
  | Flip_mem of { seq : int; addr : int; bit : int }
      (** flip [bit] of [mem.(addr)] just before instruction [seq] runs *)
  | Mask_write of { seq : int; and_mask : int64; or_mask : int64; xor_mask : int64 }
      (** generalized corruption of the value written by dynamic
          instruction [seq]: [((v land and) lor or) lxor xor].  Encodes
          multi-bit upsets (xor), stuck-at-0 (and) and stuck-at-1 (or). *)
  | Mask_mem of {
      seq : int;
      addr : int;
      and_mask : int64;
      or_mask : int64;
      xor_mask : int64;
    }  (** the memory-resident counterpart of [Mask_write] *)
  | Cache_fault of {
      seq : int;
      geom : Cache_model.geometry;
      loc : Cache_model.loc;
      and_mask : int64;
      or_mask : int64;
      xor_mask : int64;
    }
      (** corrupt one cache metadata field or data word just before
          instruction [seq] runs.  Arming this fault makes the VM route
          every memory access through a {!Cache_model.t} of [geom];
          the cache is semantically transparent until the corruption
          fires, so the pre-fault execution is identical to an uncached
          run.  Only the interpreter simulates the cache — the compiled
          backend reports such configs unsupported and [Backend] falls
          back. *)

type outcome =
  | Finished
  | Trapped of string  (** segfault, arithmetic trap, stack overflow *)
  | Budget_exceeded    (** the hang of the fault-manifestation model *)

(** Corruption applied by the mask faults. *)
let apply_masks (v : int64) ~(and_mask : int64) ~(or_mask : int64)
    ~(xor_mask : int64) : int64 =
  Int64.logxor (Int64.logor (Int64.logand v and_mask) or_mask) xor_mask

let fault_to_string = function
  | Flip_write { seq; bit } ->
      Printf.sprintf "flip bit %d of the value written at instruction %d" bit
        seq
  | Flip_mem { seq; addr; bit } ->
      Printf.sprintf "flip bit %d of memory word %d before instruction %d" bit
        addr seq
  | Mask_write { seq; and_mask; or_mask; xor_mask } ->
      Printf.sprintf
        "corrupt the value written at instruction %d (and=%Lx or=%Lx xor=%Lx)"
        seq and_mask or_mask xor_mask
  | Mask_mem { seq; addr; and_mask; or_mask; xor_mask } ->
      Printf.sprintf
        "corrupt memory word %d before instruction %d (and=%Lx or=%Lx xor=%Lx)"
        addr seq and_mask or_mask xor_mask
  | Cache_fault { seq; geom; loc; and_mask; or_mask; xor_mask } ->
      Printf.sprintf
        "corrupt cache (%s) %s before instruction %d (and=%Lx or=%Lx xor=%Lx)"
        (Cache_model.geometry_to_string geom)
        (Cache_model.loc_to_string loc)
        seq and_mask or_mask xor_mask

type recover = {
  max_restores : int;
      (** rollbacks allowed before the trap is allowed to escape *)
  snapshot_interval : int;
      (** minimum dynamic instructions between two snapshots: bounds
          the full-copy checkpoint cost on region-dense programs *)
}

let default_recover = { max_restores = 3; snapshot_interval = 50_000 }

type mpi_hooks = {
  rank : int;
  size : int;
  send : dest:int -> tag:int -> Value.t -> unit;
  recv : src:int -> tag:int -> Value.t;
  allreduce_sum : Value.t -> Value.t;
  barrier : unit -> unit;
}

type config = {
  budget : int;  (** max dynamic instructions before declaring a hang *)
  fault : fault option;
  trace : Trace.t option;
  sink : (Trace.event -> unit) option;
      (** streaming alternative to [trace]: each event is passed to the
          callback and not retained, like a tracer writing to a file
          (used to measure instrumentation cost without the memory) *)
  iter_mark : int;  (** mark id that delimits main-loop iterations, or -1 *)
  mpi : mpi_hooks option;
  tick : (unit -> unit) option;
      (** called once per dynamic instruction, with nothing allocated —
          the hook for wall-clock watchdogs; exceptions it raises
          propagate to the caller unclassified *)
  recover : recover option;
      (** checkpoint/rollback: snapshot the entry frame at region
          boundaries (rate-limited by [snapshot_interval]) and, when a
          trap escapes to the entry frame, restore the last snapshot
          instead of crashing — up to [max_restores] times.  The dynamic
          instruction counter is {e not} rolled back, so a transient
          fault keyed on a sequence number never re-fires on replay. *)
}

let default_config =
  {
    budget = 500_000_000;
    fault = None;
    trace = None;
    sink = None;
    iter_mark = -1;
    mpi = None;
    tick = None;
    recover = None;
  }

type result = {
  outcome : outcome;
  instructions : int;  (** dynamic instructions executed *)
  output : string;     (** accumulated formatted prints *)
  mem : int64 array;   (** final memory image *)
  iterations : int;    (** main-loop iterations observed (from markers) *)
  restores : int;      (** checkpoint rollbacks taken (0 without [recover]) *)
}

exception Budget
exception Vm_trap of string

(* --- NPB randlc ------------------------------------------------------- *)

let r23 = 0.5 ** 23.
let t23 = 2.0 ** 23.
let r46 = 0.5 ** 46.
let t46 = 2.0 ** 46.

(** One step of the NPB 46-bit linear congruential generator.  Returns
    [(new_state, uniform_in_0_1)]. *)
let randlc_step (x : float) (a : float) : float * float =
  let a1 = Float.of_int (Float.to_int (r23 *. a)) in
  let a2 = a -. (t23 *. a1) in
  let x1 = Float.of_int (Float.to_int (r23 *. x)) in
  let x2 = x -. (t23 *. x1) in
  let t1 = (a1 *. x2) +. (a2 *. x1) in
  let t2 = Float.of_int (Float.to_int (r23 *. t1)) in
  let z = t1 -. (t23 *. t2) in
  let t3 = (t23 *. z) +. (a2 *. x2) in
  let t4 = Float.of_int (Float.to_int (r46 *. t3)) in
  let x' = t3 -. (t46 *. t4) in
  (x', r46 *. x')

(* --- C-style formatting ---------------------------------------------- *)

(** Render a C-style format with the given values.  Supported
    directives: [%d %x] (i64) and [%e %f %g] (f64), with optional
    flags/width/precision.  This is where the paper's Data Truncation
    pattern manifests for output: a ["%12.6e"] print discards mantissa
    bits. *)
let format_output (fmt : string) (vals : Value.t list) : string =
  let buf = Buffer.create (String.length fmt + 16) in
  let vals = ref vals in
  let take () =
    match !vals with
    | [] -> raise (Vm_trap "print: missing argument")
    | v :: rest ->
        vals := rest;
        v
  in
  let n = String.length fmt in
  let rec scan i =
    if i >= n then ()
    else if Char.equal fmt.[i] '%' && i + 1 < n then
      if Char.equal fmt.[i + 1] '%' then begin
        Buffer.add_char buf '%';
        scan (i + 2)
      end
      else begin
        let rec conv j =
          if j >= n then raise (Vm_trap "print: truncated format")
          else
            match fmt.[j] with
            | 'd' | 'x' ->
                let spec = String.sub fmt i (j - i) ^ "L" ^ String.make 1 fmt.[j] in
                let v = take () in
                Buffer.add_string buf
                  (Printf.sprintf
                     (Scanf.format_from_string spec "%Ld")
                     v);
                scan (j + 1)
            | 'e' | 'f' | 'g' ->
                let spec = String.sub fmt i (j - i + 1) in
                let v = take () in
                Buffer.add_string buf
                  (Printf.sprintf
                     (Scanf.format_from_string spec "%e")
                     (Value.to_float v));
                scan (j + 1)
            | '0' .. '9' | '.' | '-' | '+' | ' ' -> conv (j + 1)
            | c -> raise (Vm_trap (Printf.sprintf "print: bad directive %%%c" c))
        in
        conv (i + 1)
      end
    else begin
      Buffer.add_char buf fmt.[i];
      scan (i + 1)
    end
  in
  scan 0;
  Buffer.contents buf

(* --- execution -------------------------------------------------------- *)

let max_call_depth = 4096

let run (prog : Prog.t) (cfg : config) : result =
  let mem = Array.make prog.mem_size 0L in
  List.iter (fun (a, v) -> mem.(a) <- v) prog.init_mem;
  let out = Buffer.create 256 in
  let count = ref 0 in
  let next_act = ref 0 in
  let iter = ref (-1) in
  let nregions = Array.length prog.region_table in
  let inst_counters = Array.make (max 1 nregions) 0 in
  let prev_eff = ref (-1) in
  let cur_inst = ref (-1) in
  let check_addr a =
    if a < 0 || a >= Array.length mem then
      raise (Vm_trap (Printf.sprintf "segfault at address %d" a))
  in
  let addr_of_value (v : Value.t) : int =
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0
    then raise (Vm_trap "segfault: wild address");
    let a = Value.to_int v in
    check_addr a;
    a
  in
  (* the cache is only simulated when a cache fault is armed: fault-free
     it is semantically transparent, so plain runs (and every historical
     campaign count) keep the direct flat-memory path *)
  let cache =
    match cfg.fault with
    | Some (Cache_fault { geom; _ }) -> Some (Cache_model.create geom)
    | Some (Flip_write _ | Flip_mem _ | Mask_write _ | Mask_mem _) | None ->
        None
  in
  let mread a =
    match cache with None -> mem.(a) | Some c -> Cache_model.read c mem a
  in
  let mwrite a v =
    match cache with
    | None -> mem.(a) <- v
    | Some c -> Cache_model.write c mem a v
  in
  let maybe_flip seq v =
    match cfg.fault with
    | Some (Flip_write { seq = s; bit }) when s = seq -> Value.flip_bit v bit
    | Some (Mask_write { seq = s; and_mask; or_mask; xor_mask }) when s = seq
      ->
        apply_masks v ~and_mask ~or_mask ~xor_mask
    | Some (Flip_write _ | Flip_mem _ | Mask_write _ | Mask_mem _ | Cache_fault _)
    | None ->
        v
  in
  let apply_mem_fault seq =
    match cfg.fault with
    | Some (Flip_mem { seq = s; addr; bit }) when s = seq ->
        check_addr addr;
        mem.(addr) <- Value.flip_bit mem.(addr) bit
    | Some (Mask_mem { seq = s; addr; and_mask; or_mask; xor_mask })
      when s = seq ->
        check_addr addr;
        mem.(addr) <- apply_masks mem.(addr) ~and_mask ~or_mask ~xor_mask
    | Some (Cache_fault { seq = s; loc; and_mask; or_mask; xor_mask; _ })
      when s = seq -> (
        match cache with
        | Some c ->
            Cache_model.corrupt c loc ~f:(fun v ->
                apply_masks v ~and_mask ~or_mask ~xor_mask)
        | None -> ())
    | Some (Flip_mem _ | Flip_write _ | Mask_write _ | Mask_mem _ | Cache_fault _)
    | None ->
        ()
  in
  let trace = cfg.trace in
  (* when neither a retained trace nor a sink consumes events, skip
     event construction entirely: the argument arrays of [record] are
     the VM's dominant allocation, and dropping them is what lets
     parallel campaigns scale (allocation-driven minor GCs synchronize
     every domain in OCaml 5) *)
  let recording =
    match (trace, cfg.sink) with None, None -> false | _, _ -> true
  in
  let tick = match cfg.tick with Some f -> f | None -> fun () -> () in
  let restores = ref 0 in
  let rec exec_fun fidx (args : int64 array) (inherited : int) (depth : int) :
      int64 option =
    if depth > max_call_depth then raise (Vm_trap "call stack overflow");
    let f = prog.funcs.(fidx) in
    let regs = Array.make f.nregs 0L in
    Array.blit args 0 regs 0 (Array.length args);
    let act = !next_act in
    incr next_act;
    let pc = ref 0 in
    let result = ref None in
    let running = ref true in
    (* checkpoint/rollback applies to the entry frame only: a snapshot
       captures everything a replay from [pc] needs (memory, entry-frame
       registers, region bookkeeping, output length).  The dynamic
       instruction counter stays monotonic across restores so a
       seq-keyed transient fault never re-fires, and [Budget] /
       [Watchdog.Timeout] are never caught — rollback recovers traps,
       not hangs. *)
    let protected = depth = 0 && cfg.recover <> None in
    let max_restores, snap_interval =
      match cfg.recover with
      | Some r -> (r.max_restores, max 1 r.snapshot_interval)
      | None -> (0, max_int)
    in
    let snap_mem = if protected then Array.copy mem else [||] in
    let snap_regs = if protected then Array.copy regs else [||] in
    let snap_counters = if protected then Array.copy inst_counters else [||] in
    let snap_pc = ref 0 in
    let snap_iter = ref !iter in
    let snap_prev_eff = ref !prev_eff in
    let snap_cur_inst = ref !cur_inst in
    let snap_out_len = ref (Buffer.length out) in
    let snap_taken = ref false in
    let last_snap_seq = ref min_int in
    let take_snapshot seq =
      (* dirty cache lines must land in [mem] before it is copied, or a
         restore would resurrect pre-writeback values *)
      (match cache with Some c -> Cache_model.flush c mem | None -> ());
      Array.blit mem 0 snap_mem 0 (Array.length mem);
      Array.blit regs 0 snap_regs 0 (Array.length regs);
      Array.blit inst_counters 0 snap_counters 0 (Array.length inst_counters);
      snap_pc := !pc;
      snap_iter := !iter;
      snap_prev_eff := !prev_eff;
      snap_cur_inst := !cur_inst;
      snap_out_len := Buffer.length out;
      snap_taken := true;
      last_snap_seq := seq
    in
    let try_restore () =
      if !snap_taken && !restores < max_restores then begin
        incr restores;
        (* rollback: buffered (possibly corrupted) lines die with the
           discarded state — the restored memory is the truth *)
        (match cache with Some c -> Cache_model.invalidate c | None -> ());
        Array.blit snap_mem 0 mem 0 (Array.length mem);
        Array.blit snap_regs 0 regs 0 (Array.length regs);
        Array.blit snap_counters 0 inst_counters 0 (Array.length inst_counters);
        pc := !snap_pc;
        iter := !snap_iter;
        prev_eff := !snap_prev_eff;
        cur_inst := !snap_cur_inst;
        Buffer.truncate out !snap_out_len;
        true
      end
      else false
    in
    let body () =
    while !running do
      let i = !pc in
      let ins = f.code.(i) in
      let seq = !count in
      if seq >= cfg.budget then raise Budget;
      tick ();
      count := seq + 1;
      apply_mem_fault seq;
      let static_r = f.regions.(i) in
      let eff = if static_r >= 0 then static_r else inherited in
      let boundary = eff <> !prev_eff in
      if boundary then begin
        if eff >= 0 then begin
          cur_inst := inst_counters.(eff);
          inst_counters.(eff) <- !cur_inst + 1
        end
        else cur_inst := -1;
        prev_eff := eff
      end;
      if
        protected
        && ((not !snap_taken)
           || (boundary && seq - !last_snap_seq >= snap_interval))
      then take_snapshot seq;
      let record op reads writes =
        match (trace, cfg.sink) with
        | None, None -> ()
        | _, _ ->
            let e =
              {
                Trace.seq;
                fidx;
                pc = i;
                act;
                line = f.lines.(i);
                region = eff;
                instance = (if eff >= 0 then !cur_inst else -1);
                iter = !iter;
                op;
                reads;
                writes;
              }
            in
            (match trace with Some t -> Trace.push t e | None -> ());
            (match cfg.sink with Some k -> k e | None -> ())
      in
      (match ins with
      | Const (d, v) ->
          let v = maybe_flip seq v in
          regs.(d) <- v;
          if recording then record Trace.OConst [||] [| (Loc.Reg (act, d), v) |];
          incr pc
      | Bin (op, d, a, b) ->
          let va = regs.(a) and vb = regs.(b) in
          let v = maybe_flip seq (Op.eval_bin op va vb) in
          regs.(d) <- v;
          if recording then
            record (Trace.OBin op)
              [| (Loc.Reg (act, a), va); (Loc.Reg (act, b), vb) |]
              [| (Loc.Reg (act, d), v) |];
          incr pc
      | Un (op, d, a) ->
          let va = regs.(a) in
          let v = maybe_flip seq (Op.eval_un op va) in
          regs.(d) <- v;
          if recording then
            record (Trace.OUn op)
              [| (Loc.Reg (act, a), va) |]
              [| (Loc.Reg (act, d), v) |];
          incr pc
      | Load (d, a) ->
          let va = regs.(a) in
          let addr = addr_of_value va in
          let v0 = mread addr in
          let v = maybe_flip seq v0 in
          regs.(d) <- v;
          if recording then
            record Trace.OLoad
              [| (Loc.Reg (act, a), va); (Loc.Mem addr, v0) |]
              [| (Loc.Reg (act, d), v) |];
          incr pc
      | Store (s, a) ->
          let vs = regs.(s) and va = regs.(a) in
          let addr = addr_of_value va in
          let v = maybe_flip seq vs in
          mwrite addr v;
          if recording then
            record Trace.OStore
              [| (Loc.Reg (act, s), vs); (Loc.Reg (act, a), va) |]
              [| (Loc.Mem addr, v) |];
          incr pc
      | Jmp l ->
          if recording then record Trace.OJmp [||] [||];
          pc := l
      | Bnz (cnd, l1, l2) ->
          let vc = regs.(cnd) in
          let taken = Value.is_true vc in
          if recording then
            record (Trace.OBr taken) [| (Loc.Reg (act, cnd), vc) |] [||];
          pc := if taken then l1 else l2
      | Call (callee, argregs, ret) ->
          let argv = Array.map (fun r -> regs.(r)) argregs in
          if recording then
            record Trace.OCall
              (Array.mapi (fun k r -> (Loc.Reg (act, r), argv.(k))) argregs)
              [||];
          let rv = exec_fun callee argv eff (depth + 1) in
          (match (ret, rv) with
          | Some d, Some v ->
              (* the returned value is a write performed by the call
                 instruction itself: attribute it to the call's own seq.
                 The attribution event must NOT consume a fresh dynamic
                 seq — traced and untraced runs must produce identical
                 seq streams, or fault sites harvested from a trace land
                 on the wrong instruction in untraced campaign runs.
                 Like every other write, the value is faultable (at the
                 call's seq), traced or not. *)
              let v = maybe_flip seq v in
              regs.(d) <- v;
              if recording then
                record Trace.ORet [||] [| (Loc.Reg (act, d), v) |]
          | Some _, None ->
              raise (Vm_trap "call: callee returned no value")
          | None, (Some _ | None) -> ());
          incr pc
      | Ret r ->
          let v = Option.map (fun r -> regs.(r)) r in
          if recording then
            record Trace.ORet
              (match r with
              | Some r -> [| (Loc.Reg (act, r), regs.(r)) |]
              | None -> [||])
              [||];
          result := v;
          running := false
      | Intr (intr, argregs, ret) ->
          let argv = Array.map (fun r -> regs.(r)) argregs in
          let reads =
            Array.mapi (fun k r -> (Loc.Reg (act, r), argv.(k))) argregs
          in
          let set_ret name v extra_reads extra_writes =
            let v = maybe_flip seq v in
            (match ret with
            | Some d -> regs.(d) <- v
            | None -> ());
            let writes =
              match ret with
              | Some d -> Array.append [| (Loc.Reg (act, d), v) |] extra_writes
              | None -> extra_writes
            in
            record (Trace.OIntr name) (Array.append reads extra_reads) writes
          in
          (match intr with
          | Randlc ->
              let saddr = addr_of_value argv.(0) in
              let a = Value.to_float argv.(1) in
              let x = Value.to_float (mread saddr) in
              let x', r = randlc_step x a in
              mwrite saddr (Value.of_float x');
              set_ret "randlc" (Value.of_float r)
                [| (Loc.Mem saddr, Value.of_float x) |]
                [| (Loc.Mem saddr, Value.of_float x') |]
          | Print fmtstr ->
              Buffer.add_string out (format_output fmtstr (Array.to_list argv));
              (* the format string travels in the opclass so analyses can
                 re-render values and detect output truncation masking *)
              record (Trace.OIntr ("print:" ^ fmtstr)) reads [||]
          | MpiSend -> (
              match cfg.mpi with
              | None -> record (Trace.OIntr "mpi_send") reads [||]
              | Some m ->
                  m.send ~dest:(Value.to_int argv.(0))
                    ~tag:(Value.to_int argv.(1)) argv.(2);
                  record (Trace.OIntr "mpi_send") reads [||])
          | MpiRecv -> (
              match cfg.mpi with
              | None -> raise (Vm_trap "mpi_recv without an MPI runtime")
              | Some m ->
                  let v =
                    m.recv ~src:(Value.to_int argv.(0))
                      ~tag:(Value.to_int argv.(1))
                  in
                  set_ret "mpi_recv" v [||] [||])
          | MpiAllreduceSum -> (
              match cfg.mpi with
              | None -> set_ret "mpi_allreduce" argv.(0) [||] [||]
              | Some m -> set_ret "mpi_allreduce" (m.allreduce_sum argv.(0)) [||] [||])
          | MpiBarrier ->
              (match cfg.mpi with None -> () | Some m -> m.barrier ());
              record (Trace.OIntr "mpi_barrier") reads [||]
          | MpiRank ->
              let r = match cfg.mpi with None -> 0 | Some m -> m.rank in
              set_ret "mpi_rank" (Value.of_int r) [||] [||]
          | MpiSize ->
              let s = match cfg.mpi with None -> 1 | Some m -> m.size in
              set_ret "mpi_size" (Value.of_int s) [||] [||]
          | Illegal msg -> raise (Vm_trap ("illegal instruction: " ^ msg)));
          incr pc
      | Mark m ->
          if m = cfg.iter_mark then incr iter;
          if recording then record (Trace.OMark m) [||] [||];
          incr pc);
      if !pc >= Array.length f.code then running := false
    done
    in
    let rec guarded () =
      try body ()
      with (Vm_trap _ | Op.Trap _) as exn when protected ->
        if try_restore () then guarded () else raise exn
    in
    if protected then guarded () else body ();
    !result
  in
  let outcome =
    try
      ignore (exec_fun prog.entry [||] (-1) 0);
      Finished
    with
    | Budget -> Budget_exceeded
    | Vm_trap msg -> Trapped msg
    | Op.Trap msg -> Trapped msg
  in
  (* surface buffered stores in the returned memory image; with a
     corrupted tag this is where a lost or misdirected writeback becomes
     visible to verification *)
  (match cache with Some c -> Cache_model.flush c mem | None -> ());
  {
    outcome;
    instructions = !count;
    output = Buffer.contents out;
    mem;
    iterations = !iter + 1;
    restores = !restores;
  }

(** Convenience: run without tracing and without faults. *)
let run_plain ?(budget = default_config.budget) (prog : Prog.t) : result =
  run prog { default_config with budget }

(** Convenience: run with a fresh trace; returns the result and trace. *)
let run_traced ?(budget = default_config.budget) ?(iter_mark = -1) ?fault
    (prog : Prog.t) : result * Trace.t =
  let t = Trace.create () in
  let r = run prog { default_config with budget; iter_mark; fault; trace = Some t } in
  (r, t)

(** Convenience: run streaming every event into [sink] without
    retaining any of them — the constant-memory counterpart of
    [run_traced] (e.g. a [Trace_io] writer over a file). *)
let run_sink ?(budget = default_config.budget) ?(iter_mark = -1) ?fault
    ~(sink : Trace.event -> unit) (prog : Prog.t) : result =
  run prog
    { default_config with budget; iter_mark; fault; sink = Some sink }
