(** Compiled (non-tracing) execution backend.

    A one-time {e closure compilation} of a program: every instruction
    of every function is translated, once per program, into a
    pre-resolved thunk — operand registers, branch targets, opcode
    semantics, intrinsic bodies and the return-register write are all
    resolved at compile time, and the thunks are {e direct-threaded}:
    each one tail-calls its successor through the function's step
    array, so the hot loop has no per-step dispatch on the instruction
    constructor, no program counter bookkeeping, and allocates no
    trace events.  Registers and memory live in unboxed [Bigarray]
    storage (registers on a growable register stack addressed by a
    frame base), so the ALU steps compile to plain 64-bit loads and
    stores — no write barrier, no per-operation boxing — while
    program memory stays a plain [int64 array] handed back in the
    result without conversion.  The
    per-instruction dynamic-seq accounting (budget check, [tick],
    memory-fault application, write-fault application, iteration
    markers) is preserved {e exactly}: a compiled run is bit-identical
    to the interpreter on outcome, output, final memory, instruction
    count, iteration count, and fault firing — the differential
    harness in [test_backend] pins this on every registry app,
    optimized and hardened variants included.

    What the backend deliberately does not support — and why falling
    back is safe:
    {ul
    {- {e tracing / sinks}: the whole point is to skip event
       construction; a traced run wants the interpreter;}
    {- {e MPI hooks}: rank interleaving is driven by the simulated
       runtime, out of scope for a per-process compile;}
    {- {e checkpoint/rollback}: snapshots capture region bookkeeping
       the compiled thunks do not maintain.}}
    {!supported} detects these configurations so callers
    ({!Backend.run}) fall back to {!Machine.run} explicitly instead of
    silently diverging.

    Plans are cached content-addressed (digest of the marshaled
    program) with a physical-identity fast path, so campaigns compile
    each program once no matter how many trials run. *)

module BA1 = Bigarray.Array1

type ba = (int64, Bigarray.int64_elt, Bigarray.c_layout) BA1.t

(* --- per-run mutable state --------------------------------------------- *)

(* Everything a step thunk needs at run time.  Fault checks are
   pre-resolved to two sentinel sequence numbers and two corruption
   closures: the hot path pays one integer compare per fault kind per
   instruction instead of the interpreter's constructor match. *)
type rt = {
  mem : int64 array;
  mem_len : int;
  out : Buffer.t;
  mutable count : int;  (** dynamic instruction counter (the seq source) *)
  budget : int;
  mutable next_stop : int;
      (** first seq needing the slow prologue: min of the budget and a
          still-pending memory-fault seq *)
  tick : unit -> unit;
  has_tick : bool;
  wf_seq : int;  (** seq whose written value is corrupted, or [min_int] *)
  wf : int64 -> int64;
  mf_seq : int;  (** seq before which a memory word is corrupted *)
  mf_addr : int;
  mf : int64 -> int64;
  iter_mark : int;
  mutable iter : int;
  mutable rs : ba;  (** register stack, one frame per live activation *)
  mutable sp : int;  (** first free register-stack slot *)
}

(* mirrors the interpreter's [apply_mem_fault]: bounds-check the
   faulted address (a wild address is a segfault, like any access) *)
let apply_mem (rt : rt) : unit =
  let a = rt.mf_addr in
  if a < 0 || a >= rt.mem_len then
    raise (Machine.Vm_trap (Printf.sprintf "segfault at address %d" a));
  rt.mem.(a) <- rt.mf (Array.unsafe_get rt.mem a)

(* cold half of the per-instruction prologue: runs only when a step's
   seq reaches [next_stop], i.e. the budget boundary or a pending
   memory fault.  Replicates the interpreter's exact order — budget
   check, tick, counter advance, memory-fault application — so that
   instruction counts and trap points stay bit-identical. *)
let slow_pre (rt : rt) (seq : int) : unit =
  if seq >= rt.budget then raise Machine.Budget;
  if rt.has_tick then rt.tick ();
  rt.count <- seq + 1;
  if seq = rt.mf_seq then apply_mem rt;
  rt.next_stop <- rt.budget

(* the per-instruction prologue.  The fast path pays one compare
   against [next_stop] (folding the budget and memory-fault checks),
   the tick test, and the counter advance.  Returns this instruction's
   dynamic seq. *)
let[@inline] pre (rt : rt) : int =
  let seq = rt.count in
  (if seq >= rt.next_stop then slow_pre rt seq
   else begin
     if rt.has_tick then rt.tick ();
     rt.count <- seq + 1
   end);
  seq

(* mirrors the interpreter's [addr_of_value] byte for byte *)
let max_addr : int64 = Int64.of_int max_int

let[@inline] addr_of (rt : rt) (v : int64) : int =
  if Int64.compare v 0L < 0 || Int64.compare v max_addr > 0 then
    raise (Machine.Vm_trap "segfault: wild address");
  let a = Value.to_int v in
  if a < 0 || a >= rt.mem_len then
    raise (Machine.Vm_trap (Printf.sprintf "segfault at address %d" a));
  a

(* checked register access for indices the compile-time validation
   could not prove in range: reproduces the interpreter's
   [Invalid_argument] from a plain array access, frame-locally *)
let getr (rt : rt) (bp : int) (nregs : int) (r : int) : int64 =
  if r < 0 || r >= nregs then invalid_arg "index out of bounds";
  BA1.unsafe_get rt.rs (bp + r)

let setr (rt : rt) (bp : int) (nregs : int) (r : int) (v : int64) : unit =
  if r < 0 || r >= nregs then invalid_arg "index out of bounds";
  BA1.unsafe_set rt.rs (bp + r) v

(* --- the compiled form -------------------------------------------------- *)

(* A step executes one instruction and tail-calls its successor; the
   arguments are the run state, the activation's register-stack frame
   base, and the call depth.  [Some v] / [None] is the activation's
   return value (the interpreter's [result]).  Every function's step
   array carries two sentinels past the code: index [len] halts (the
   interpreter's fall-off-the-end / [pc >= len] exit, also the target
   of any out-of-range forward branch) and index [len + 1] reproduces
   the interpreter's instruction-fetch failure on a negative branch
   target. *)
type step = rt -> int -> int -> int64 option

let halt : step = fun _ _ _ -> None
let bad_fetch : step = fun _ _ _ -> invalid_arg "index out of bounds"

type cfun = { steps : step array; nregs : int }

type plan = {
  p_prog : Prog.t;
  p_exec : rt -> int -> int64 array -> int -> int64 option;
}

let prog (p : plan) : Prog.t = p.p_prog

(* compile one instruction to a thunk.  [steps] is the enclosing
   function's (not yet fully filled) step array: successors are
   reached by index through it, so forward and backward edges resolve
   uniformly once compilation finishes.  [call_exec] breaks the
   compile/execute recursion — steps of a caller need the executor of
   its callees, which are compiled by the same pass.

   Register indices are validated here, at compile time: in-range
   accesses (every program the front end emits) use unsafe stack
   slots, out-of-range ones go through {!getr}/{!setr} so a malformed
   program fails with the interpreter's exact exception at the exact
   instruction.  The hot arms duplicate the register write across the
   write-fault branch so the fault-free path is a pure unboxed
   load/compute/store chain. *)
let compile_step ~(call_exec : rt -> int -> int64 array -> int -> int64 option)
    ~(steps : step array) (f : Prog.func) (i : int) : step =
  let len = Array.length f.Prog.code in
  let nregs = f.Prog.nregs in
  let next = i + 1 in
  (* clamp a branch target to the sentinel slots: >= len halts (the
     interpreter's loop-exit check), < 0 fails the fetch *)
  let tgt l = if l < 0 then len + 1 else if l > len then len else l in
  let ok r = r >= 0 && r < nregs in
  (* fall-through successor, with a trailing unconditional jump folded
     into the predecessor's epilogue: the jump still consumes its own
     dynamic seq (full prologue) but costs no indirect call — loop
     back-edges are ~10% of the dynamic steps in tight kernels *)
  let succ j =
    if j < len then
      match f.Prog.code.(j) with
      | Instr.Jmp l -> (tgt l, true)
      | _ -> (j, false)
    else (j, false)
  in
  let jnext, jfuse = succ next in
  match f.Prog.code.(i) with
  | Instr.Const (d, v) when ok d ->
      fun rt bp depth ->
        let seq = pre rt in
        BA1.unsafe_set rt.rs (bp + d) (if seq = rt.wf_seq then rt.wf v else v);
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
  | Instr.Const (d, v) ->
      fun rt bp depth ->
        let seq = pre rt in
        setr rt bp nregs d (if seq = rt.wf_seq then rt.wf v else v);
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
  | Instr.Bin
      (((Op.Eq | Op.Ne | Op.Lt | Op.Le | Op.Gt | Op.Ge) as op), d, a, b)
    when ok d && ok a && ok b && next < len
         && (match f.Prog.code.(next) with
            | Instr.Bnz (c, _, _) -> c = d
            | _ -> false) -> (
      (* loop-control superinstruction: an integer compare immediately
         consumed by a conditional branch on its result.  Both dynamic
         seqs keep their full prologues (budget, tick, memory fault)
         and the branch reads the {e stored} register — a write fault
         on the compare's seq still steers the branch — so the fused
         pair is observably identical to the two separate steps, minus
         one indirect call per loop iteration. *)
      let l1, l2 =
        match f.Prog.code.(next) with
        | Instr.Bnz (_, l1, l2) -> (tgt l1, tgt l2)
        | _ -> assert false
      in
      match op with
      | Op.Lt ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.compare x y < 0)))
             else
               BA1.unsafe_set rs (bp + d) (Value.truth (Int64.compare x y < 0)));
            let _ = pre rt in
            (Array.unsafe_get steps
               (if Value.is_true (BA1.unsafe_get rs (bp + d)) then l1 else l2))
              rt bp depth
      | Op.Le ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.compare x y <= 0)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (Int64.compare x y <= 0)));
            let _ = pre rt in
            (Array.unsafe_get steps
               (if Value.is_true (BA1.unsafe_get rs (bp + d)) then l1 else l2))
              rt bp depth
      | Op.Gt ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.compare x y > 0)))
             else
               BA1.unsafe_set rs (bp + d) (Value.truth (Int64.compare x y > 0)));
            let _ = pre rt in
            (Array.unsafe_get steps
               (if Value.is_true (BA1.unsafe_get rs (bp + d)) then l1 else l2))
              rt bp depth
      | Op.Ge ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.compare x y >= 0)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (Int64.compare x y >= 0)));
            let _ = pre rt in
            (Array.unsafe_get steps
               (if Value.is_true (BA1.unsafe_get rs (bp + d)) then l1 else l2))
              rt bp depth
      | Op.Eq ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.equal x y)))
             else BA1.unsafe_set rs (bp + d) (Value.truth (Int64.equal x y)));
            let _ = pre rt in
            (Array.unsafe_get steps
               (if Value.is_true (BA1.unsafe_get rs (bp + d)) then l1 else l2))
              rt bp depth
      | _ ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (not (Int64.equal x y))))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (not (Int64.equal x y))));
            let _ = pre rt in
            (Array.unsafe_get steps
               (if Value.is_true (BA1.unsafe_get rs (bp + d)) then l1 else l2))
              rt bp depth)
  | Instr.Bin (((Op.Add | Op.Or | Op.Ashr) as op1), d, a, b)
    when ok d && ok a && ok b && next < len
         && (match f.Prog.code.(next) with
            | Instr.Store (s, aa) -> ok s && ok aa
            | _ -> false) -> (
      (* address-compute superinstruction: an integer op feeding a
         store on the very next step.  Both halves keep their full
         prologues and register writes — only the inter-step indirect
         call is gone. *)
      let s2, a2 =
        match f.Prog.code.(next) with
        | Instr.Store (s, aa) -> (s, aa)
        | _ -> assert false
      in
      let jnext2, jfuse2 = succ (i + 2) in
      match op1 with
      | Op.Add ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.add x y))
             else BA1.unsafe_set rs (bp + d) (Int64.add x y));
            let seq2 = pre rt in
            let vs = BA1.unsafe_get rs (bp + s2) in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a2)) in
            Array.unsafe_set rt.mem addr
              (if seq2 = rt.wf_seq then rt.wf vs else vs);
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth
      | Op.Ashr ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            let sh = Int64.to_int y land 63 in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.shift_right x sh))
             else BA1.unsafe_set rs (bp + d) (Int64.shift_right x sh));
            let seq2 = pre rt in
            let vs = BA1.unsafe_get rs (bp + s2) in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a2)) in
            Array.unsafe_set rt.mem addr
              (if seq2 = rt.wf_seq then rt.wf vs else vs);
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth
      | _ ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.logor x y))
             else BA1.unsafe_set rs (bp + d) (Int64.logor x y));
            let seq2 = pre rt in
            let vs = BA1.unsafe_get rs (bp + s2) in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a2)) in
            Array.unsafe_set rt.mem addr
              (if seq2 = rt.wf_seq then rt.wf vs else vs);
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth)
  | Instr.Bin (((Op.Add | Op.Or) as op1), d, a, b)
    when ok d && ok a && ok b && next < len
         && (match f.Prog.code.(next) with
            | Instr.Load (dd, aa) -> ok dd && ok aa
            | _ -> false) -> (
      (* integer op feeding a load: same fusion rules as above *)
      let d2, a2 =
        match f.Prog.code.(next) with
        | Instr.Load (dd, aa) -> (dd, aa)
        | _ -> assert false
      in
      let jnext2, jfuse2 = succ (i + 2) in
      match op1 with
      | Op.Add ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.add x y))
             else BA1.unsafe_set rs (bp + d) (Int64.add x y));
            let seq2 = pre rt in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a2)) in
            (if seq2 = rt.wf_seq then
               BA1.unsafe_set rs (bp + d2) (rt.wf (Array.unsafe_get rt.mem addr))
             else BA1.unsafe_set rs (bp + d2) (Array.unsafe_get rt.mem addr));
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth
      | _ ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.logor x y))
             else BA1.unsafe_set rs (bp + d) (Int64.logor x y));
            let seq2 = pre rt in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a2)) in
            (if seq2 = rt.wf_seq then
               BA1.unsafe_set rs (bp + d2) (rt.wf (Array.unsafe_get rt.mem addr))
             else BA1.unsafe_set rs (bp + d2) (Array.unsafe_get rt.mem addr));
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth)
  | Instr.Bin (((Op.Add | Op.Or) as op1), d, a, b)
    when ok d && ok a && ok b && next < len
         && (match f.Prog.code.(next) with
            | Instr.Bin (Op.Add, dd, aa, bb) -> ok dd && ok aa && ok bb
            | _ -> false) -> (
      (* back-to-back integer arithmetic (index stepping) *)
      let d2, a2, b2 =
        match f.Prog.code.(next) with
        | Instr.Bin (_, dd, aa, bb) -> (dd, aa, bb)
        | _ -> assert false
      in
      let jnext2, jfuse2 = succ (i + 2) in
      match op1 with
      | Op.Add ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.add x y))
             else BA1.unsafe_set rs (bp + d) (Int64.add x y));
            let seq2 = pre rt in
            let x2 = BA1.unsafe_get rs (bp + a2)
            and y2 = BA1.unsafe_get rs (bp + b2) in
            (if seq2 = rt.wf_seq then
               BA1.unsafe_set rs (bp + d2) (rt.wf (Int64.add x2 y2))
             else BA1.unsafe_set rs (bp + d2) (Int64.add x2 y2));
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth
      | _ ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.logor x y))
             else BA1.unsafe_set rs (bp + d) (Int64.logor x y));
            let seq2 = pre rt in
            let x2 = BA1.unsafe_get rs (bp + a2)
            and y2 = BA1.unsafe_get rs (bp + b2) in
            (if seq2 = rt.wf_seq then
               BA1.unsafe_set rs (bp + d2) (rt.wf (Int64.add x2 y2))
             else BA1.unsafe_set rs (bp + d2) (Int64.add x2 y2));
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth)
  | Instr.Bin (op, d, a, b) when ok d && ok a && ok b -> (
      (* the hot ALU ops are expanded inline — no per-application
         closure call, unboxed fault-free path — with the exact
         eval_bin semantics; trapping and rare ops keep the
         one-time-dispatch closure *)
      match op with
      | Op.Add ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.add x y))
             else BA1.unsafe_set rs (bp + d) (Int64.add x y));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Sub ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.sub x y))
             else BA1.unsafe_set rs (bp + d) (Int64.sub x y));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Mul ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.mul x y))
             else BA1.unsafe_set rs (bp + d) (Int64.mul x y));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Div ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            if Int64.equal y 0L then raise (Op.Trap "integer division by zero");
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.div x y))
             else BA1.unsafe_set rs (bp + d) (Int64.div x y));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Rem ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            if Int64.equal y 0L then raise (Op.Trap "integer remainder by zero");
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.rem x y))
             else BA1.unsafe_set rs (bp + d) (Int64.rem x y));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.And ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.logand x y))
             else BA1.unsafe_set rs (bp + d) (Int64.logand x y));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Or ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.logor x y))
             else BA1.unsafe_set rs (bp + d) (Int64.logor x y));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Xor ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.logxor x y))
             else BA1.unsafe_set rs (bp + d) (Int64.logxor x y));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Shl ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            let s = Int64.to_int y land 63 in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.shift_left x s))
             else BA1.unsafe_set rs (bp + d) (Int64.shift_left x s));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Lshr ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            let s = Int64.to_int y land 63 in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Int64.shift_right_logical x s))
             else BA1.unsafe_set rs (bp + d) (Int64.shift_right_logical x s));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Ashr ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            let s = Int64.to_int y land 63 in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.shift_right x s))
             else BA1.unsafe_set rs (bp + d) (Int64.shift_right x s));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Eq ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.equal x y)))
             else BA1.unsafe_set rs (bp + d) (Value.truth (Int64.equal x y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Ne ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (not (Int64.equal x y))))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (not (Int64.equal x y))));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Lt ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.compare x y < 0)))
             else
               BA1.unsafe_set rs (bp + d) (Value.truth (Int64.compare x y < 0)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Le ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.compare x y <= 0)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (Int64.compare x y <= 0)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Gt ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.compare x y > 0)))
             else
               BA1.unsafe_set rs (bp + d) (Value.truth (Int64.compare x y > 0)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Ge ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Int64.compare x y >= 0)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (Int64.compare x y >= 0)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fadd ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf
                    (Value.of_float (Value.to_float x +. Value.to_float y)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.of_float (Value.to_float x +. Value.to_float y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fsub ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf
                    (Value.of_float (Value.to_float x -. Value.to_float y)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.of_float (Value.to_float x -. Value.to_float y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fmul ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf
                    (Value.of_float (Value.to_float x *. Value.to_float y)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.of_float (Value.to_float x *. Value.to_float y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fdiv ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf
                    (Value.of_float (Value.to_float x /. Value.to_float y)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.of_float (Value.to_float x /. Value.to_float y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Flt ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Value.to_float x < Value.to_float y)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (Value.to_float x < Value.to_float y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fle ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Value.to_float x <= Value.to_float y)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (Value.to_float x <= Value.to_float y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fgt ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Value.to_float x > Value.to_float y)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (Value.to_float x > Value.to_float y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fge ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.truth (Value.to_float x >= Value.to_float y)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.truth (Value.to_float x >= Value.to_float y)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Imin ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            let v = if Int64.compare x y <= 0 then x else y in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf v)
             else BA1.unsafe_set rs (bp + d) v);
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Imax ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a)
            and y = BA1.unsafe_get rs (bp + b) in
            let v = if Int64.compare x y >= 0 then x else y in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf v)
             else BA1.unsafe_set rs (bp + d) v);
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Feq | Op.Fne | Op.Fmin | Op.Fmax ->
          let g = Op.bin_fn op in
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let v = g (BA1.unsafe_get rs (bp + a)) (BA1.unsafe_get rs (bp + b)) in
            BA1.unsafe_set rs (bp + d) (if seq = rt.wf_seq then rt.wf v else v);
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth)
  | Instr.Bin (op, d, a, b) ->
      let g = Op.bin_fn op in
      fun rt bp depth ->
        let seq = pre rt in
        let v = g (getr rt bp nregs a) (getr rt bp nregs b) in
        setr rt bp nregs d (if seq = rt.wf_seq then rt.wf v else v);
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
  | Instr.Un (op, d, a) when ok d && ok a -> (
      match op with
      | Op.Neg ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.neg x))
             else BA1.unsafe_set rs (bp + d) (Int64.neg x));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Not ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Int64.lognot x))
             else BA1.unsafe_set rs (bp + d) (Int64.lognot x));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fneg ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.of_float (-.Value.to_float x)))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.of_float (-.Value.to_float x)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fabs ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.of_float (Float.abs (Value.to_float x))))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.of_float (Float.abs (Value.to_float x))));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Trunc32 ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Int64.shift_right (Int64.shift_left x 32) 32))
             else
               BA1.unsafe_set rs (bp + d)
                 (Int64.shift_right (Int64.shift_left x 32) 32));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.FloatOfInt ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf (Value.of_float (Int64.to_float x)))
             else
               BA1.unsafe_set rs (bp + d) (Value.of_float (Int64.to_float x)));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.F32round ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let x = BA1.unsafe_get rs (bp + a) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d)
                 (rt.wf
                    (Value.of_float
                       (Int32.float_of_bits
                          (Int32.bits_of_float (Value.to_float x)))))
             else
               BA1.unsafe_set rs (bp + d)
                 (Value.of_float
                    (Int32.float_of_bits
                       (Int32.bits_of_float (Value.to_float x)))));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Op.Fsqrt | Op.Fsin | Op.Fcos | Op.IntOfFloat ->
          let g = Op.un_fn op in
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let v = g (BA1.unsafe_get rs (bp + a)) in
            BA1.unsafe_set rs (bp + d) (if seq = rt.wf_seq then rt.wf v else v);
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth)
  | Instr.Un (op, d, a) ->
      let g = Op.un_fn op in
      fun rt bp depth ->
        let seq = pre rt in
        let v = g (getr rt bp nregs a) in
        setr rt bp nregs d (if seq = rt.wf_seq then rt.wf v else v);
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
  | Instr.Load (d, a)
    when ok d && ok a && next < len
         && (match f.Prog.code.(next) with
            | Instr.Bin ((Op.Add | Op.Ashr), dd, aa, bb) ->
                ok dd && ok aa && ok bb
            | _ -> false) -> (
      (* load feeding integer arithmetic *)
      let op2, d2, a2, b2 =
        match f.Prog.code.(next) with
        | Instr.Bin (o, dd, aa, bb) -> (o, dd, aa, bb)
        | _ -> assert false
      in
      let jnext2, jfuse2 = succ (i + 2) in
      match op2 with
      | Op.Add ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a)) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Array.unsafe_get rt.mem addr))
             else BA1.unsafe_set rs (bp + d) (Array.unsafe_get rt.mem addr));
            let seq2 = pre rt in
            let x2 = BA1.unsafe_get rs (bp + a2)
            and y2 = BA1.unsafe_get rs (bp + b2) in
            (if seq2 = rt.wf_seq then
               BA1.unsafe_set rs (bp + d2) (rt.wf (Int64.add x2 y2))
             else BA1.unsafe_set rs (bp + d2) (Int64.add x2 y2));
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth
      | _ ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a)) in
            (if seq = rt.wf_seq then
               BA1.unsafe_set rs (bp + d) (rt.wf (Array.unsafe_get rt.mem addr))
             else BA1.unsafe_set rs (bp + d) (Array.unsafe_get rt.mem addr));
            let seq2 = pre rt in
            let x2 = BA1.unsafe_get rs (bp + a2)
            and y2 = BA1.unsafe_get rs (bp + b2) in
            let sh = Int64.to_int y2 land 63 in
            (if seq2 = rt.wf_seq then
               BA1.unsafe_set rs (bp + d2) (rt.wf (Int64.shift_right x2 sh))
             else BA1.unsafe_set rs (bp + d2) (Int64.shift_right x2 sh));
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth)
  | Instr.Load (d, a)
    when ok d && ok a && next < len
         && (match f.Prog.code.(next) with
            | Instr.Store (ss, aa) -> ok ss && ok aa
            | _ -> false) ->
      (* memory-to-memory move *)
      let s2, a2 =
        match f.Prog.code.(next) with
        | Instr.Store (ss, aa) -> (ss, aa)
        | _ -> assert false
      in
      let jnext2, jfuse2 = succ (i + 2) in
      fun rt bp depth ->
        let seq = pre rt in
        let rs = rt.rs in
        let addr = addr_of rt (BA1.unsafe_get rs (bp + a)) in
        (if seq = rt.wf_seq then
           BA1.unsafe_set rs (bp + d) (rt.wf (Array.unsafe_get rt.mem addr))
         else BA1.unsafe_set rs (bp + d) (Array.unsafe_get rt.mem addr));
        let seq2 = pre rt in
        let vs = BA1.unsafe_get rs (bp + s2) in
        let addr2 = addr_of rt (BA1.unsafe_get rs (bp + a2)) in
        Array.unsafe_set rt.mem addr2
          (if seq2 = rt.wf_seq then rt.wf vs else vs);
        (if jfuse2 then ignore (pre rt));
        (Array.unsafe_get steps jnext2) rt bp depth
  | Instr.Load (d, a) when ok d && ok a ->
      fun rt bp depth ->
        let seq = pre rt in
        let rs = rt.rs in
        let addr = addr_of rt (BA1.unsafe_get rs (bp + a)) in
        (if seq = rt.wf_seq then
           BA1.unsafe_set rs (bp + d) (rt.wf (Array.unsafe_get rt.mem addr))
         else BA1.unsafe_set rs (bp + d) (Array.unsafe_get rt.mem addr));
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
  | Instr.Load (d, a) ->
      fun rt bp depth ->
        let seq = pre rt in
        let addr = addr_of rt (getr rt bp nregs a) in
        let v = Array.unsafe_get rt.mem addr in
        setr rt bp nregs d (if seq = rt.wf_seq then rt.wf v else v);
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
  | Instr.Store (s, a)
    when ok s && ok a && next < len
         && (match f.Prog.code.(next) with
            | Instr.Bin ((Op.Add | Op.Or), dd, aa, bb) ->
                ok dd && ok aa && ok bb
            | _ -> false) -> (
      (* store followed by the loop's index arithmetic *)
      let op2, d2, a2, b2 =
        match f.Prog.code.(next) with
        | Instr.Bin (op2, dd, aa, bb) -> (op2, dd, aa, bb)
        | _ -> assert false
      in
      let jnext2, jfuse2 = succ (i + 2) in
      match op2 with
      | Op.Add ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let vs = BA1.unsafe_get rs (bp + s) in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a)) in
            Array.unsafe_set rt.mem addr
              (if seq = rt.wf_seq then rt.wf vs else vs);
            let seq2 = pre rt in
            let x2 = BA1.unsafe_get rs (bp + a2)
            and y2 = BA1.unsafe_get rs (bp + b2) in
            (if seq2 = rt.wf_seq then
               BA1.unsafe_set rs (bp + d2) (rt.wf (Int64.add x2 y2))
             else BA1.unsafe_set rs (bp + d2) (Int64.add x2 y2));
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth
      | _ ->
          fun rt bp depth ->
            let seq = pre rt in
            let rs = rt.rs in
            let vs = BA1.unsafe_get rs (bp + s) in
            let addr = addr_of rt (BA1.unsafe_get rs (bp + a)) in
            Array.unsafe_set rt.mem addr
              (if seq = rt.wf_seq then rt.wf vs else vs);
            let seq2 = pre rt in
            let x2 = BA1.unsafe_get rs (bp + a2)
            and y2 = BA1.unsafe_get rs (bp + b2) in
            (if seq2 = rt.wf_seq then
               BA1.unsafe_set rs (bp + d2) (rt.wf (Int64.logor x2 y2))
             else BA1.unsafe_set rs (bp + d2) (Int64.logor x2 y2));
            (if jfuse2 then ignore (pre rt));
            (Array.unsafe_get steps jnext2) rt bp depth)
  | Instr.Store (s, a) when ok s && ok a ->
      fun rt bp depth ->
        let seq = pre rt in
        let rs = rt.rs in
        let vs = BA1.unsafe_get rs (bp + s) in
        let addr = addr_of rt (BA1.unsafe_get rs (bp + a)) in
        Array.unsafe_set rt.mem addr (if seq = rt.wf_seq then rt.wf vs else vs);
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
  | Instr.Store (s, a) ->
      fun rt bp depth ->
        let seq = pre rt in
        let vs = getr rt bp nregs s in
        let addr = addr_of rt (getr rt bp nregs a) in
        Array.unsafe_set rt.mem addr (if seq = rt.wf_seq then rt.wf vs else vs);
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
  | Instr.Jmp l ->
      let l = tgt l in
      fun rt bp depth ->
        let _ = pre rt in
        (Array.unsafe_get steps l) rt bp depth
  | Instr.Bnz (c, l1, l2) when ok c ->
      let l1 = tgt l1 and l2 = tgt l2 in
      fun rt bp depth ->
        let _ = pre rt in
        (Array.unsafe_get steps
           (if Value.is_true (BA1.unsafe_get rt.rs (bp + c)) then l1 else l2))
          rt bp depth
  | Instr.Bnz (c, l1, l2) ->
      let l1 = tgt l1 and l2 = tgt l2 in
      fun rt bp depth ->
        let _ = pre rt in
        (Array.unsafe_get steps
           (if Value.is_true (getr rt bp nregs c) then l1 else l2))
          rt bp depth
  | Instr.Call (callee, argregs, ret) -> (
      let nargs = Array.length argregs in
      let read_args rt bp =
        let argv = Array.make nargs 0L in
        for k = 0 to nargs - 1 do
          argv.(k) <- getr rt bp nregs argregs.(k)
        done;
        argv
      in
      match ret with
      | None ->
          fun rt bp depth ->
            let _ = pre rt in
            let argv = read_args rt bp in
            ignore (call_exec rt callee argv (depth + 1));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Some d ->
          fun rt bp depth ->
            let seq = pre rt in
            let argv = read_args rt bp in
            (match call_exec rt callee argv (depth + 1) with
            | Some v ->
                (* the fixed seq contract: the returned value is a write
                   attributed to the call's own seq, faultable there *)
                setr rt bp nregs d (if seq = rt.wf_seq then rt.wf v else v)
            | None -> raise (Machine.Vm_trap "call: callee returned no value"));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth)
  | Instr.Ret (Some r) when ok r ->
      fun rt bp _ ->
        let _ = pre rt in
        Some (BA1.unsafe_get rt.rs (bp + r))
  | Instr.Ret (Some r) ->
      fun rt bp _ ->
        let _ = pre rt in
        Some (getr rt bp nregs r)
  | Instr.Ret None ->
      fun rt _ _ ->
        let _ = pre rt in
        None
  | Instr.Intr (intr, argregs, ret) -> (
      let nargs = Array.length argregs in
      (* the interpreter reads every argument register up front *)
      let read_args rt bp =
        let argv = Array.make nargs 0L in
        for k = 0 to nargs - 1 do
          argv.(k) <- getr rt bp nregs argregs.(k)
        done;
        argv
      in
      match intr with
      | Instr.Randlc -> (
          let step_state rt bp =
            let seq = pre rt in
            let argv = read_args rt bp in
            let saddr = addr_of rt argv.(0) in
            let a = Value.to_float argv.(1) in
            let x = Value.to_float (Array.unsafe_get rt.mem saddr) in
            let x', r = Machine.randlc_step x a in
            rt.mem.(saddr) <- Value.of_float x';
            let v = Value.of_float r in
            if seq = rt.wf_seq then rt.wf v else v
          in
          match ret with
          | Some d ->
              fun rt bp depth ->
                let v = step_state rt bp in
                setr rt bp nregs d v;
                (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
          | None ->
              fun rt bp depth ->
                ignore (step_state rt bp);
                (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth)
      | Instr.Print fmt ->
          fun rt bp depth ->
            let _ = pre rt in
            let argv = read_args rt bp in
            Buffer.add_string rt.out
              (Machine.format_output fmt (Array.to_list argv));
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Instr.MpiSend | Instr.MpiBarrier ->
          (* without an MPI runtime these are no-ops (the interpreter
             only records a trace event, which we do not produce) *)
          fun rt bp depth ->
            let _ = pre rt in
            ignore (read_args rt bp);
            (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
      | Instr.MpiRecv ->
          fun rt bp _ ->
            let _ = pre rt in
            ignore (read_args rt bp);
            raise (Machine.Vm_trap "mpi_recv without an MPI runtime")
      | Instr.MpiAllreduceSum -> (
          (* without an MPI runtime, the one-rank sum is the identity *)
          match ret with
          | Some d ->
              fun rt bp depth ->
                let seq = pre rt in
                let argv = read_args rt bp in
                let v = argv.(0) in
                setr rt bp nregs d (if seq = rt.wf_seq then rt.wf v else v);
                (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
          | None ->
              fun rt bp depth ->
                let _ = pre rt in
                let argv = read_args rt bp in
                ignore argv.(0);
                (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth)
      | Instr.MpiRank | Instr.MpiSize -> (
          let v0 = match intr with Instr.MpiRank -> 0L | _ -> 1L in
          match ret with
          | Some d ->
              fun rt bp depth ->
                let seq = pre rt in
                ignore (read_args rt bp);
                setr rt bp nregs d (if seq = rt.wf_seq then rt.wf v0 else v0);
                (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth
          | None ->
              fun rt bp depth ->
                let _ = pre rt in
                ignore (read_args rt bp);
                (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth)
      | Instr.Illegal msg ->
          (* the structured trap of an undecodable instruction-store
             word; mirrors the interpreter exactly (argument registers
             are read first, then the trap) *)
          let m = "illegal instruction: " ^ msg in
          fun rt bp _ ->
            let _ = pre rt in
            ignore (read_args rt bp);
            raise (Machine.Vm_trap m))
  | Instr.Mark m ->
      fun rt bp depth ->
        let _ = pre rt in
        if m = rt.iter_mark then rt.iter <- rt.iter + 1;
        (if jfuse then ignore (pre rt));
        (Array.unsafe_get steps jnext) rt bp depth

let compile_fun
    ~(call_exec : rt -> int -> int64 array -> int -> int64 option)
    (f : Prog.func) : cfun =
  let len = Array.length f.Prog.code in
  let steps = Array.make (len + 2) halt in
  steps.(len + 1) <- bad_fetch;
  if len = 0 then
    (* the interpreter fetches code.(0) before anything else *)
    steps.(0) <- bad_fetch
  else
    for i = 0 to len - 1 do
      steps.(i) <- compile_step ~call_exec ~steps f i
    done;
  { steps; nregs = f.Prog.nregs }

let compile (prog : Prog.t) : plan =
  let exec_fwd : (rt -> int -> int64 array -> int -> int64 option) ref =
    ref (fun _ _ _ _ -> assert false)
  in
  let call_exec rt fidx args depth = !exec_fwd rt fidx args depth in
  let funs = Array.map (compile_fun ~call_exec) prog.Prog.funcs in
  let exec rt fidx (args : int64 array) (depth : int) : int64 option =
    if depth > Machine.max_call_depth then
      raise (Machine.Vm_trap "call stack overflow");
    let cf = funs.(fidx) in
    let na = Array.length args in
    if na > cf.nregs then invalid_arg "Array.blit";
    let bp = rt.sp in
    let needed = bp + cf.nregs in
    if needed > BA1.dim rt.rs then begin
      let bigger =
        BA1.create Bigarray.int64 Bigarray.c_layout
          (max (2 * needed) (2 * BA1.dim rt.rs))
      in
      BA1.blit rt.rs (BA1.sub bigger 0 (BA1.dim rt.rs));
      rt.rs <- bigger
    end;
    let rs = rt.rs in
    for k = bp to bp + cf.nregs - 1 do
      BA1.unsafe_set rs k 0L
    done;
    for k = 0 to na - 1 do
      BA1.unsafe_set rs (bp + k) args.(k)
    done;
    rt.sp <- bp + cf.nregs;
    let r = (Array.unsafe_get cf.steps 0) rt bp depth in
    rt.sp <- bp;
    r
  in
  exec_fwd := exec;
  { p_prog = prog; p_exec = exec }

(* --- the content-addressed plan cache ----------------------------------- *)

(* Plans are pure values compiled from pure values: keying by the
   digest of the marshaled program makes the cache content-addressed
   (structurally equal programs share a plan), and the physical-
   identity fast path makes the per-trial lookup free — App.bake hands
   out the same Prog.t to every trial of a campaign. *)
let cache : (string, plan) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()
let last : (Prog.t * plan) option Atomic.t = Atomic.make None

(* Instruction-store campaigns bake one mutated program per trial, each
   re-keying the cache with a distinct digest; without a bound a long
   campaign would retain every mutant's plan.  Plans are pure values, so
   resetting the cache only costs recompiles — the steady-state working
   set (the registry apps and their variants) is far below the cap. *)
let cache_cap = 1024

let digest (prog : Prog.t) : string = Digest.string (Marshal.to_string prog [])

let plan_for (prog : Prog.t) : plan =
  match Atomic.get last with
  | Some (p, pl) when p == prog -> pl
  | _ ->
      let key = digest prog in
      Mutex.lock cache_mutex;
      let pl =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock cache_mutex)
          (fun () ->
            match Hashtbl.find_opt cache key with
            | Some pl -> pl
            | None ->
                if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
                let pl = compile prog in
                Hashtbl.add cache key pl;
                pl)
      in
      Atomic.set last (Some (prog, pl));
      pl

(* --- execution ----------------------------------------------------------- *)

let supported (cfg : Machine.config) : bool =
  match
    (cfg.Machine.trace, cfg.Machine.sink, cfg.Machine.mpi, cfg.Machine.recover)
  with
  | None, None, None, None -> (
      (* cache faults need the simulated cache between every memory
         access — only the interpreter carries one *)
      match cfg.Machine.fault with
      | Some (Machine.Cache_fault _) -> false
      | Some
          ( Machine.Flip_write _ | Machine.Flip_mem _ | Machine.Mask_write _
          | Machine.Mask_mem _ )
      | None ->
          true)
  | _ -> false

let run (p : plan) (cfg : Machine.config) : Machine.result =
  if not (supported cfg) then
    invalid_arg
      "Compiled.run: config needs the interpreter (trace, sink, MPI hooks, \
       recovery, or a cache fault attached)";
  let prog = p.p_prog in
  let mem_len = prog.Prog.mem_size in
  let mem = Array.make mem_len 0L in
  List.iter (fun (a, v) -> mem.(a) <- v) prog.Prog.init_mem;
  let wf_seq, wf =
    match cfg.Machine.fault with
    | Some (Machine.Flip_write { seq; bit }) ->
        (seq, fun v -> Value.flip_bit v bit)
    | Some (Machine.Mask_write { seq; and_mask; or_mask; xor_mask }) ->
        (seq, fun v -> Machine.apply_masks v ~and_mask ~or_mask ~xor_mask)
    | Some (Machine.Flip_mem _ | Machine.Mask_mem _ | Machine.Cache_fault _)
    | None ->
        (min_int, Fun.id)
  in
  let mf_seq, mf_addr, mf =
    match cfg.Machine.fault with
    | Some (Machine.Flip_mem { seq; addr; bit }) ->
        (seq, addr, fun v -> Value.flip_bit v bit)
    | Some (Machine.Mask_mem { seq; addr; and_mask; or_mask; xor_mask }) ->
        (seq, addr, fun v -> Machine.apply_masks v ~and_mask ~or_mask ~xor_mask)
    | Some
        (Machine.Flip_write _ | Machine.Mask_write _ | Machine.Cache_fault _)
    | None ->
        (min_int, 0, Fun.id)
  in
  let tick, has_tick =
    match cfg.Machine.tick with
    | Some f -> (f, true)
    | None -> ((fun () -> ()), false)
  in
  let rt =
    {
      mem;
      mem_len;
      out = Buffer.create 256;
      count = 0;
      budget = cfg.Machine.budget;
      next_stop =
        (if mf_seq >= 0 then min cfg.Machine.budget mf_seq
         else cfg.Machine.budget);
      tick;
      has_tick;
      wf_seq;
      wf;
      mf_seq;
      mf_addr;
      mf;
      iter_mark = cfg.Machine.iter_mark;
      iter = -1;
      rs = BA1.create Bigarray.int64 Bigarray.c_layout 4096;
      sp = 0;
    }
  in
  let outcome =
    try
      ignore (p.p_exec rt prog.Prog.entry [||] 0);
      Machine.Finished
    with
    | Machine.Budget -> Machine.Budget_exceeded
    | Machine.Vm_trap msg -> Machine.Trapped msg
    | Op.Trap msg -> Machine.Trapped msg
  in
  {
    Machine.outcome;
    instructions = rt.count;
    output = Buffer.contents rt.out;
    mem;
    iterations = rt.iter + 1;
    restores = 0;
  }
