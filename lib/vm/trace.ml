(** Dynamic instruction traces.

    One event per executed instruction, carrying everything the
    analyses need: the locations read and written with their values,
    the source line, and the *effective* code region — the static
    region of the instruction, or, for instructions executed inside a
    callee, the region of the call site (regions extend through calls,
    as in the paper's region model).  Events are also stamped with the
    region-instance number and the main-loop iteration so a trace can
    be split without re-deriving loop structure. *)

type opclass =
  | OConst
  | OBin of Op.bin
  | OUn of Op.un
  | OLoad
  | OStore
  | OJmp
  | OBr of bool  (** taken value of the condition *)
  | OCall
  | ORet
  | OIntr of string
  | OMark of int

type event = {
  seq : int;  (** dynamic instruction index, from 0 *)
  fidx : int;
  pc : int;
  act : int;  (** activation id of the executing frame *)
  line : int;
  region : int;  (** effective region id, or -1 *)
  instance : int;  (** region instance number (per region), or -1 *)
  iter : int;  (** main-loop iteration, or -1 before the first marker *)
  op : opclass;
  reads : (Loc.t * Value.t) array;
  writes : (Loc.t * Value.t) array;
}

type t = { mutable events : event array; mutable len : int }

let create () = { events = [||]; len = 0 }

let push (t : t) (e : event) =
  let cap = Array.length t.events in
  if t.len >= cap then begin
    let nbuf = Array.make (max 1024 (cap * 2)) e in
    Array.blit t.events 0 nbuf 0 t.len;
    t.events <- nbuf
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let length (t : t) = t.len
let get (t : t) i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  t.events.(i)

let iter f (t : t) =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let iteri f (t : t) =
  for i = 0 to t.len - 1 do
    f i t.events.(i)
  done

let fold f acc (t : t) =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.events.(i)
  done;
  !acc

let to_seq (t : t) : event Seq.t =
  let rec go i () =
    if i >= t.len then Seq.Nil else Seq.Cons (t.events.(i), go (i + 1))
  in
  go 0

(** Events [lo, hi) as a fresh array (used for region-instance slices). *)
let slice (t : t) lo hi =
  if lo < 0 || hi > t.len || lo > hi then invalid_arg "Trace.slice";
  Array.sub t.events lo (hi - lo)

let control_signature (e : event) = (e.fidx, e.pc)

let pp_opclass ppf = function
  | OConst -> Fmt.string ppf "const"
  | OBin op -> Op.pp_bin ppf op
  | OUn op -> Op.pp_un ppf op
  | OLoad -> Fmt.string ppf "load"
  | OStore -> Fmt.string ppf "store"
  | OJmp -> Fmt.string ppf "jmp"
  | OBr b -> Fmt.pf ppf "br(%b)" b
  | OCall -> Fmt.string ppf "call"
  | ORet -> Fmt.string ppf "ret"
  | OIntr s -> Fmt.pf ppf "intr:%s" s
  | OMark m -> Fmt.pf ppf "mark:%d" m

let pp_event ppf (e : event) =
  Fmt.pf ppf "#%d f%d:%d %a reads[%a] writes[%a] line=%d region=%d inst=%d it=%d"
    e.seq e.fidx e.pc pp_opclass e.op
    Fmt.(array ~sep:sp (pair ~sep:(any "=") Loc.pp (fun ppf v -> Value.pp_bits ppf v)))
    e.reads
    Fmt.(array ~sep:sp (pair ~sep:(any "=") Loc.pp (fun ppf v -> Value.pp_bits ppf v)))
    e.writes e.line e.region e.instance e.iter
