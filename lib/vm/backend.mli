(** Execution-backend selection: the interpreter ({!Machine.run}) or
    the closure-compiled backend ({!Compiled}), with automatic per-run
    fallback to the interpreter for configurations the compiled
    backend does not support (tracing, sinks, MPI hooks, recovery). *)

type t = Interp | Compiled

val default : t
(** [Compiled]: bit-identical where it applies, faster everywhere a
    campaign spends time. *)

val names : string list
(** Accepted spellings, for CLI converters: ["interp"; "compiled"]. *)

val to_string : t -> string
val of_string : string -> t option

val runner : t -> Prog.t -> Machine.config -> Machine.result
(** [runner t prog] resolves the execution function once — for
    [Compiled] this compiles (or fetches the cached) plan eagerly, so
    call it before fanning out to domains or forked workers.  The
    returned function falls back to the interpreter per run when the
    config is outside the compiled envelope. *)

val run : t -> Prog.t -> Machine.config -> Machine.result
(** One-shot convenience for [runner t prog cfg]. *)
