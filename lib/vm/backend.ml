(** Execution-backend selection.

    One switch for everything that runs programs without looking at
    traces: campaigns, the campaign server's workers, resilience
    reports.  [Compiled] is the default — it is bit-identical to the
    interpreter wherever it applies and several times faster per
    trial — and it degrades to the interpreter {e per run} whenever a
    configuration needs interpreter-only machinery (tracing, sinks,
    MPI hooks, checkpoint/rollback), so callers can pick a backend
    once and attach a trace or recovery policy later without breaking
    anything. *)

type t = Interp | Compiled

let default = Compiled
let names = [ "interp"; "compiled" ]

let to_string = function Interp -> "interp" | Compiled -> "compiled"

let of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | _ -> None

let runner (t : t) (prog : Prog.t) : Machine.config -> Machine.result =
  match t with
  | Interp -> Machine.run prog
  | Compiled ->
      (* compile (or fetch) the plan now, once, so callers can resolve
         the runner before fanning trials out to domains or forked
         workers; the per-run supported check keeps the fallback
         explicit and exact *)
      let plan = Compiled.plan_for prog in
      fun cfg ->
        if Compiled.supported cfg then Compiled.run plan cfg
        else Machine.run prog cfg

let run (t : t) (prog : Prog.t) (cfg : Machine.config) : Machine.result =
  runner t prog cfg
