(** Turn any serial program into a communication-bearing one by
    appending a guarded ring-exchange epilogue to the entry function:
    send to the right neighbor, receive from the left, all-reduce the
    circulated token, trap if the total differs from [np*(np-1)/2].
    No-op at [size=1]; never touches application state, so the wrapped
    program's serial output and reference value are exactly the
    original's. *)

val tag : int
(** The epilogue's message tag (9001). *)

val ring_exchange : Ast.program -> Ast.program
