(** Turn any serial program into a communication-bearing one.

    The ten study applications are serial: they have no MPI intrinsics,
    so a message-fault campaign over them would inject into an empty
    channel.  [ring_exchange] appends a guarded ring-exchange epilogue
    to the entry function: each rank sends its id to its right
    neighbor, receives from its left, all-reduces the circulated token,
    and traps if the reduced total differs from the closed form
    [np*(np-1)/2] — so an undetected payload corruption manifests as a
    crash (or, under the reliable transport, is caught by checksum and
    resent), a dropped message as a recv timeout, and a clean exchange
    leaves the application's own output byte-identical.

    The epilogue runs {e after} the application body and its
    verification phase, touches only fresh [__ft_]-prefixed locals, and
    is a no-op at [size=1] (the [np > 1] guard) — the wrapped program's
    serial behavior, output, and baked reference value are exactly
    those of the original, which is what makes Wu-style serial/parallel
    comparisons of the same program meaningful. *)

let tag = 9001
(** The epilogue's message tag (outside any application's tag space —
    the apps have none). *)

let ring_exchange (p : Ast.program) : Ast.program =
  let wrap (fd : Ast.fundef) : Ast.fundef =
    if not (String.equal fd.Ast.fname p.Ast.entry) then fd
    else
      let open Ast in
      let locals =
        fd.locals
        @ [
            DScalar ("__ft_me", Ty.I64);
            DScalar ("__ft_np", Ty.I64);
            DScalar ("__ft_right", Ty.I64);
            DScalar ("__ft_left", Ty.I64);
            DScalar ("__ft_tok", Ty.F64);
            DScalar ("__ft_sum", Ty.F64);
            DScalar ("__ft_expect", Ty.F64);
            DScalar ("__ft_ok", Ty.I64);
          ]
      in
      let body =
        fd.body
        @ [
            SAssign ("__ft_me", MpiRank);
            SAssign ("__ft_np", MpiSize);
            SIf
              ( v "__ft_np" > i 1,
                [
                  SAssign
                    ("__ft_right", (v "__ft_me" + i 1) % v "__ft_np");
                  SAssign
                    ( "__ft_left",
                      (v "__ft_me" - i 1 + v "__ft_np") % v "__ft_np" );
                  SMpiSend
                    (v "__ft_right", i tag, to_float (v "__ft_me"));
                  SAssign ("__ft_tok", MpiRecv (v "__ft_left", i tag));
                  SAssign ("__ft_sum", MpiAllreduce (v "__ft_tok"));
                  SAssign
                    ( "__ft_expect",
                      to_float (v "__ft_np" * (v "__ft_np" - i 1)) / f 2.0 );
                  (* detection guard (the hardening passes' idiom):
                     divide by the comparison so a corrupted circulated
                     token traps instead of vanishing into a sink *)
                  SAssign
                    ("__ft_ok", i 1 / (v "__ft_sum" = v "__ft_expect"));
                  SMpiBarrier;
                ],
                [] );
          ]
      in
      { fd with locals; body }
  in
  { p with Ast.funs = List.map wrap p.Ast.funs }
