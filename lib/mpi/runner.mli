(** Parallel execution of an IR program across simulated MPI ranks
    (one VM per rank, one OCaml domain per VM, wired to {!Comm}), with
    fault-tolerant bundle semantics: a rank that dies on a
    communication failure poisons the communicator instead of
    stranding its peers, and the bundle records who failed and why. *)

type rank_result = {
  rank : int;
  result : Machine.result;
  trace_len : int;  (** events streamed, 0 when tracing was off *)
  failure : string option;
      (** a communication failure that killed this rank ([result] is
          then a synthesized [Trapped]) *)
}

type bundle = {
  results : rank_result array;
  wall_seconds : float;
  recorded : (int * int * int) list;  (** receive order, if recording *)
  comm_stats : Comm.stats;  (** transport counters (faults, resends) *)
}

val run :
  ?traced:bool ->
  ?record:bool ->
  ?max_live:int ->
  ?replay:(int * int * int) array ->
  ?faults:Comm.fault_plan ->
  ?reliable:bool ->
  ?recv_timeout_s:float ->
  ?fault:int * Machine.fault ->
  ?recover:Machine.recover ->
  ?budget:int ->
  size:int ->
  Prog.t ->
  bundle
(** [traced] streams per-rank events through a counting sink (the
    Figure 4 instrumentation-cost measurement).
    [faults]/[reliable]/[recv_timeout_s] configure the transport;
    [fault] injects a VM fault into one rank ([(rank, fault)]);
    [recover] arms checkpoint/rollback on every rank; [budget] bounds
    each rank's dynamic instructions.  [max_live] runs ranks in bounded
    waves — only safe for programs whose ranks do not communicate. *)

val classify :
  verify:(Machine.result -> bool) -> bundle -> Campaign.outcome_class
(** Fold a bundle into the campaign taxonomy: any rank crash (trap,
    hang, comm failure) is Crashed; any verification failure is Failed;
    correct-everywhere bundles that needed checkpoint restores or
    message resends are Recovered; otherwise Success. *)
