(** Parallel execution of an IR program across simulated MPI ranks.

    Each rank runs the program in its own VM on its own OCaml domain,
    wired to the shared {!Comm} runtime.  Used by the Figure-4
    experiment (per-process tracing overhead at scale), the MPI demo
    programs, and the message-fault campaigns of [Recovery_eval].

    Fault tolerance: a rank whose VM raises [Comm_error] (a dropped
    message timing out, a dead peer) does not strand the bundle — it
    poisons the communicator so blocked peers abort promptly, and the
    bundle records the failure per rank.  {!classify} folds a bundle
    into the campaign outcome taxonomy. *)

type rank_result = {
  rank : int;
  result : Machine.result;
  trace_len : int;  (** 0 when tracing was off *)
  failure : string option;
      (** a communication failure that killed this rank ([result] is
          then a synthesized [Trapped]) *)
}

type bundle = {
  results : rank_result array;
  wall_seconds : float;
  recorded : (int * int * int) list;  (** receive order, if recording *)
  comm_stats : Comm.stats;  (** transport counters (faults, resends) *)
}

(** Run [prog] on [size] ranks.  [traced] turns per-rank instruction
    tracing on (traces are measured and discarded — the Figure 4
    experiment needs the cost, not the artifact).  [record] records the
    message receive order; [replay] enforces a previously recorded
    order.

    [faults]/[reliable]/[recv_timeout_s] configure the {!Comm} layer;
    [fault] injects a VM fault into one rank ([(rank, fault)]);
    [recover] arms checkpoint/rollback on every rank; [budget] bounds
    each rank's dynamic instructions.

    [max_live] bounds how many rank domains run at once.  It is only
    safe for programs whose ranks do not communicate (rank-replicated
    computation, as in the Figure 4 harness): a communicating program
    would deadlock waiting for an unspawned peer.  It keeps at most
    [max_live] in-memory traces alive at a time. *)
let run ?(traced = false) ?(record = false) ?max_live
    ?(replay : (int * int * int) array option) ?faults ?(reliable = false)
    ?recv_timeout_s ?(fault : (int * Machine.fault) option)
    ?(recover : Machine.recover option) ?budget ~(size : int) (prog : Prog.t) :
    bundle =
  let mode =
    match replay with
    | Some order -> Comm.Replay { order; next = 0 }
    | None -> if record then Comm.Record (ref []) else Comm.Free
  in
  let comm = Comm.create ~mode ?faults ~reliable ?recv_timeout_s ~size () in
  let t0 = Unix.gettimeofday () in
  let run_rank rank () =
    (* per-rank tracing streams events through a sink (the analog of
       LLVM-Tracer writing a per-process file) rather than retaining
       them: Figure 4 measures the instrumentation cost, not the
       artifact *)
    let events = ref 0 in
    let sink = if traced then Some (fun (_ : Trace.event) -> incr events) else None in
    let rank_fault =
      match fault with
      | Some (r, f) when r = rank -> Some f
      | Some _ | None -> None
    in
    let cfg =
      {
        Machine.default_config with
        sink;
        fault = rank_fault;
        recover;
        budget =
          (match budget with
          | Some b -> b
          | None -> Machine.default_config.Machine.budget);
        mpi = Some (Comm.hooks comm ~rank);
      }
    in
    match Machine.run prog cfg with
    | result ->
        (* a rank that dies of a VM trap (or exhausts its budget) must
           also poison the communicator: its peers may be blocked in
           [recv]/[allreduce] waiting for a message that will never
           come, and burning the full recv timeout per dead peer would
           make crash-heavy campaigns quadratically slow *)
        (match result.Machine.outcome with
        | Machine.Finished -> ()
        | Machine.Trapped m -> Comm.poison comm ~rank ("rank died: " ^ m)
        | Machine.Budget_exceeded ->
            Comm.poison comm ~rank "rank died: instruction budget exceeded");
        { rank; result; trace_len = !events; failure = None }
    | exception Comm.Comm_error { reason; peer; tag; _ } ->
        (* take the peers down with us promptly, then report the rank
           as crashed with a synthesized result *)
        let why =
          Printf.sprintf "comm failure (peer %d, tag %d): %s" peer tag reason
        in
        Comm.poison comm ~rank why;
        {
          rank;
          result =
            {
              Machine.outcome = Machine.Trapped why;
              instructions = 0;
              output = "";
              mem = [||];
              iterations = 0;
              restores = 0;
            };
          trace_len = !events;
          failure = Some why;
        }
  in
  let results =
    if size = 1 then [| run_rank 0 () |]
    else begin
      match max_live with
      | None ->
          let domains =
            Array.init size (fun rank -> Domain.spawn (run_rank rank))
          in
          Array.map Domain.join domains
      | Some cap ->
          let cap = max 1 cap in
          let out = Array.make size None in
          let rank = ref 0 in
          while !rank < size do
            let wave = min cap (size - !rank) in
            let base = !rank in
            let domains =
              Array.init wave (fun k -> Domain.spawn (run_rank (base + k)))
            in
            Array.iteri (fun k d -> out.(base + k) <- Some (Domain.join d)) domains;
            rank := base + wave
          done;
          Array.map (function Some r -> r | None -> assert false) out
    end
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    results;
    wall_seconds;
    recorded = Comm.recorded_order comm;
    comm_stats = Comm.stats comm;
  }

(** Fold a bundle into the campaign outcome taxonomy.  [verify] judges
    each rank's finished result.  Any rank crash (trap, hang, comm
    failure) makes the bundle Crashed; any verification failure makes
    it Failed (SDC); a bundle that is correct everywhere but needed the
    recovery machinery — checkpoint restores or message resends — is
    Recovered; otherwise Success. *)
let classify ~(verify : Machine.result -> bool) (b : bundle) :
    Campaign.outcome_class =
  let crashed =
    Array.exists
      (fun (r : rank_result) ->
        match r.result.Machine.outcome with
        | Machine.Finished -> false
        | Machine.Trapped _ | Machine.Budget_exceeded -> true)
      b.results
  in
  if crashed then Campaign.Crashed
  else if
    Array.exists (fun (r : rank_result) -> not (verify r.result)) b.results
  then Campaign.Failed
  else if
    b.comm_stats.Comm.resent > 0
    || Array.exists (fun (r : rank_result) -> r.result.Machine.restores > 0) b.results
  then Campaign.Recovered
  else Campaign.Success
