(** Simulated message-passing runtime: point-to-point messaging, a sum
    all-reduce and a barrier between ranks running on OCaml domains,
    with record-and-replay of receive order for nondeterminism control,
    per-message channel faults (drop / payload corruption / duplicate
    delivery under derived RNG streams), and an optional reliable
    delivery layer (sequence numbers, checksums, retransmit buffer).
    Every blocking call carries a wall-clock deadline — including in
    [Free] mode — and raises {!Comm_error} instead of hanging. *)

type msg = {
  src : int;
  tag : int;
  value : Value.t;
  seqno : int;     (** per-(src,dest)-channel sequence number, from 0 *)
  checksum : int64;  (** of the payload as sent (pre-corruption) *)
}

(** Per-message channel faults, decided at [send] under an RNG stream
    derived from [(seed, src, dest, seqno)]: a pure function of the
    plan, so faulty runs reproduce exactly in any domain schedule. *)
type fault_plan = {
  seed : int;
  drop_p : float;     (** message silently lost *)
  corrupt_p : float;  (** one payload bit flipped in flight *)
  dup_p : float;      (** message delivered twice *)
}

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable resent : int;  (** recovered from the retransmit buffer *)
  mutable dup_discarded : int;
  mutable checksum_failures : int;
}

type mode =
  | Free
  | Record of (int * int * int) list ref
      (** (rank, src, tag) appended as receives complete *)
  | Replay of { order : (int * int * int) array; mutable next : int }
      (** receives must complete in the recorded order *)

type t

exception
  Comm_error of { rank : int; peer : int; tag : int; reason : string }
(** Structured communication failure: the rank that raised, the peer it
    was talking to ([-1] for collectives), the tag ([-1] when not
    applicable), and why.  Replaces both silent hangs (via deadlines)
    and stringly errors. *)

val default_recv_timeout_s : float
(** 5 seconds. *)

val create :
  ?mode:mode ->
  ?faults:fault_plan ->
  ?reliable:bool ->
  ?recv_timeout_s:float ->
  size:int ->
  unit ->
  t
(** [reliable] turns on the ack/resend layer: receivers discard
    duplicate and corrupted frames by seqno/checksum and recover gaps
    from the sender's retransmit buffer after a resend interval
    (timeout/50).  Without it the transport delivers whatever the fault
    plan produced — and a dropped message surfaces as a recv timeout.
    @raise Invalid_argument on a non-positive size. *)

val send : t -> src:int -> dest:int -> tag:int -> Value.t -> unit
(** Buffered, non-blocking.
    @raise Comm_error on an out-of-range rank. *)

val recv : t -> rank:int -> src:int -> tag:int -> Value.t
(** Blocking with a deadline; messages on one (src, dst) channel match
    in FIFO order.
    @raise Comm_error on a rank error, an unexpected tag, a poisoned
    communicator, or a timeout — in every mode, [Free] included. *)

val allreduce_sum : t -> rank:int -> Value.t -> Value.t
(** Generation-counted rendezvous; callable repeatedly.
    @raise Comm_error on timeout or a poisoned communicator. *)

val barrier : t -> rank:int -> unit
(** @raise Comm_error on timeout or a poisoned communicator. *)

val poison : t -> rank:int -> string -> unit
(** Mark the communicator failed on behalf of [rank]: peers blocked in
    (or entering) any blocking call raise {!Comm_error} promptly
    instead of waiting out their timeouts.  First reason wins. *)

val poisoned : t -> string option

val stats : t -> stats
(** Snapshot of the transport counters. *)

val hooks : t -> rank:int -> Machine.mpi_hooks
(** Wire one rank's VM to this runtime. *)

val recorded_order : t -> (int * int * int) list
(** The receive order captured by a [Record]-mode run, oldest first. *)
