(** Simulated message-passing runtime.

    Ranks are VM instances running on OCaml domains; this module gives
    them point-to-point messaging, a sum all-reduce, and a barrier over
    mutex-protected queues.  It also implements record-and-replay of
    message receive order — the mechanism the paper borrows from
    record-and-replay tools to keep faulty MPI runs aligned with their
    fault-free twins when point-to-point nondeterminism exists.

    Two fault-tolerance layers ride on top of the plain transport:
    {ul
    {- a {e fault plan} corrupts the channel itself — per-message drop,
       payload bit-corruption, and duplicate delivery, each decided by
       a per-message RNG stream derived from [(seed, channel, seqno)]
       so campaigns reproduce exactly in any schedule;}
    {- a {e reliable} delivery mode implements the ack/resend side:
       messages carry sequence numbers and checksums, receivers discard
       duplicates and corrupted frames, and a gap (a dropped or
       discarded frame) is recovered from the sender's retransmit
       buffer after a resend interval.}}

    Every blocking operation ([recv], the all-reduce/barrier
    rendezvous, and replay-order waits) carries a wall-clock deadline —
    including in [Free] mode — and raises {!Comm_error} instead of
    hanging the domain pool; a rank that fails can {!poison} the
    communicator so its peers abort their blocking calls promptly. *)

type msg = {
  src : int;
  tag : int;
  value : Value.t;
  seqno : int;     (** per-(src,dest)-channel sequence number, from 0 *)
  checksum : int64;  (** of the payload as sent (pre-corruption) *)
}

(** Per-message channel faults, decided at [send] under a derived RNG
    stream: a pure function of [(seed, src, dest, seqno)], so faulty
    runs reproduce exactly in any domain schedule. *)
type fault_plan = {
  seed : int;
  drop_p : float;     (** message silently lost *)
  corrupt_p : float;  (** one payload bit flipped in flight *)
  dup_p : float;      (** message delivered twice *)
}

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable resent : int;  (** recovered from the retransmit buffer *)
  mutable dup_discarded : int;
  mutable checksum_failures : int;
}

let zero_stats () =
  {
    sent = 0;
    delivered = 0;
    dropped = 0;
    corrupted = 0;
    duplicated = 0;
    resent = 0;
    dup_discarded = 0;
    checksum_failures = 0;
  }

(* one all-reduce/barrier rendezvous cell with generation counting *)
type cell = {
  mutable acc : float;
  mutable arrived : int;
  mutable result : float;
  mutable generation : int;
  m : Mutex.t;
}

type mode =
  | Free  (** no ordering constraints *)
  | Record of (int * int * int) list ref
      (** append (rank, src, tag) as receives complete *)
  | Replay of { order : (int * int * int) array; mutable next : int }
      (** receives must complete in the recorded order *)

type t = {
  size : int;
  queues : msg Queue.t array array;  (** [queues.(dst).(src)] *)
  locks : Mutex.t array;             (** one per destination rank *)
  reduce : cell;
  barrier_cell : cell;
  mode : mode;
  order_lock : Mutex.t;
  faults : fault_plan option;
  reliable : bool;
  recv_timeout_s : float;
  resend_interval_s : float;
  send_seqno : int array array;   (** [send_seqno.(src).(dest)] *)
  expected : int array array;     (** [expected.(dst).(src)] next seqno *)
  pending : (int, msg) Hashtbl.t array array;
      (** [pending.(src).(dest)]: the reliable layer's retransmit
          buffer of clean copies, keyed by seqno (kept for the run —
          the simulation never acks them away) *)
  stats : stats;
  stats_m : Mutex.t;
  mutable poison_reason : string option;
  poison_m : Mutex.t;
}

let default_recv_timeout_s = 5.0

let create ?(mode = Free) ?faults ?(reliable = false)
    ?(recv_timeout_s = default_recv_timeout_s) ~(size : int) () : t =
  if size <= 0 then invalid_arg "Comm.create: size must be positive";
  let mkcell () =
    { acc = 0.0; arrived = 0; result = 0.0; generation = 0; m = Mutex.create () }
  in
  {
    size;
    queues = Array.init size (fun _ -> Array.init size (fun _ -> Queue.create ()));
    locks = Array.init size (fun _ -> Mutex.create ());
    reduce = mkcell ();
    barrier_cell = mkcell ();
    mode;
    order_lock = Mutex.create ();
    faults;
    reliable;
    recv_timeout_s;
    resend_interval_s = recv_timeout_s /. 50.0;
    send_seqno = Array.make_matrix size size 0;
    expected = Array.make_matrix size size 0;
    pending = Array.init size (fun _ -> Array.init size (fun _ -> Hashtbl.create 64));
    stats = zero_stats ();
    stats_m = Mutex.create ();
    poison_reason = None;
    poison_m = Mutex.create ();
  }

exception
  Comm_error of { rank : int; peer : int; tag : int; reason : string }

let () =
  Printexc.register_printer (function
    | Comm_error { rank; peer; tag; reason } ->
        Some
          (Printf.sprintf "Comm_error(rank %d, peer %d, tag %d): %s" rank peer
             tag reason)
    | _ -> None)

let comm_error ~rank ~peer ~tag fmt =
  Printf.ksprintf (fun reason -> raise (Comm_error { rank; peer; tag; reason })) fmt

let check_rank (t : t) ~(rank : int) (r : int) who =
  if r < 0 || r >= t.size then
    comm_error ~rank ~peer:r ~tag:(-1) "%s: rank %d out of range" who r

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(** Mark the communicator failed: every peer blocked in (or entering) a
    blocking call raises [Comm_error] promptly instead of waiting out
    its timeout.  First reason wins. *)
let poison (t : t) ~(rank : int) (reason : string) : unit =
  with_lock t.poison_m (fun () ->
      match t.poison_reason with
      | None -> t.poison_reason <- Some (Printf.sprintf "rank %d: %s" rank reason)
      | Some _ -> ())

let poisoned (t : t) : string option =
  with_lock t.poison_m (fun () -> t.poison_reason)

let check_poison (t : t) ~rank ~peer ~tag =
  match poisoned t with
  | Some r -> comm_error ~rank ~peer ~tag "peer failure: %s" r
  | None -> ()

let stats (t : t) : stats =
  with_lock t.stats_m (fun () -> { t.stats with sent = t.stats.sent })

let bump (t : t) (f : stats -> unit) =
  with_lock t.stats_m (fun () -> f t.stats)

(* the checksum models a NIC computing a frame check over the payload
   as handed to it: in-flight corruption leaves it stale *)
let checksum_of (v : Value.t) : int64 =
  Int64.logxor
    (Int64.mul v 0x9E3779B97F4A7C15L)
    (Int64.shift_right_logical (Int64.mul v 0xBF58476D1CE4E5B9L) 17)

(* per-message fault stream: channel id * 2^16 + seqno keeps streams of
   distinct messages disjoint for any realistic message count *)
let message_rng (t : t) (p : fault_plan) ~src ~dest ~seqno : Rng.t =
  Rng.derive ~seed:p.seed ~index:((((src * t.size) + dest) * 65536) + seqno)

let now () = Unix.gettimeofday ()

(* poll step shared by every blocking loop: drop the lock, yield the
   cpu briefly, re-take the lock.  OCaml's Condition has no timed wait,
   and the deadlines are the whole point of this layer. *)
let poll_sleep_s = 0.0002

let send (t : t) ~(src : int) ~(dest : int) ~(tag : int) (value : Value.t) :
    unit =
  check_rank t ~rank:src dest "send";
  check_rank t ~rank:src src "send";
  with_lock t.locks.(dest) (fun () ->
      let seqno = t.send_seqno.(src).(dest) in
      t.send_seqno.(src).(dest) <- seqno + 1;
      let clean = { src; tag; value; seqno; checksum = checksum_of value } in
      if t.reliable then Hashtbl.replace t.pending.(src).(dest) seqno clean;
      bump t (fun s -> s.sent <- s.sent + 1);
      let q = t.queues.(dest).(src) in
      match t.faults with
      | None -> Queue.push clean q
      | Some p -> (
          let rng = message_rng t p ~src ~dest ~seqno in
          let u = Rng.float rng in
          if u < p.drop_p then bump t (fun s -> s.dropped <- s.dropped + 1)
          else if u < p.drop_p +. p.corrupt_p then begin
            let bit = Rng.int rng 64 in
            bump t (fun s -> s.corrupted <- s.corrupted + 1);
            Queue.push { clean with value = Value.flip_bit value bit } q
          end
          else if u < p.drop_p +. p.corrupt_p +. p.dup_p then begin
            bump t (fun s -> s.duplicated <- s.duplicated + 1);
            Queue.push clean q;
            Queue.push clean q
          end
          else Queue.push clean q))

(* In replay mode a receive may only complete when it is next in the
   recorded order; this serializes racing receives exactly as the
   fault-free recording saw them. *)
let wait_turn (t : t) (rank : int) ~(src : int) ~(tag : int) =
  match t.mode with
  | Free | Record _ -> ()
  | Replay r ->
      let deadline = now () +. t.recv_timeout_s in
      Mutex.lock t.order_lock;
      let rec loop () =
        if r.next >= Array.length r.order then ()
          (* past the recorded prefix: no constraint *)
        else begin
          let er, es, et = r.order.(r.next) in
          if er = rank && es = src && et = tag then ()
          else begin
            (match poisoned t with
            | Some reason ->
                Mutex.unlock t.order_lock;
                comm_error ~rank ~peer:src ~tag "peer failure: %s" reason
            | None -> ());
            if now () > deadline then begin
              Mutex.unlock t.order_lock;
              comm_error ~rank ~peer:src ~tag
                "replay-order wait timed out after %.1fs" t.recv_timeout_s
            end;
            Mutex.unlock t.order_lock;
            Unix.sleepf poll_sleep_s;
            Mutex.lock t.order_lock;
            loop ()
          end
        end
      in
      loop ();
      Mutex.unlock t.order_lock

let note_received (t : t) (rank : int) ~(src : int) ~(tag : int) =
  match t.mode with
  | Free -> ()
  | Record log ->
      with_lock t.order_lock (fun () -> log := (rank, src, tag) :: !log)
  | Replay r ->
      with_lock t.order_lock (fun () ->
          if r.next < Array.length r.order then r.next <- r.next + 1)

let recv (t : t) ~(rank : int) ~(src : int) ~(tag : int) : Value.t =
  check_rank t ~rank rank "recv";
  check_rank t ~rank src "recv";
  wait_turn t rank ~src ~tag;
  let deadline = now () +. t.recv_timeout_s in
  let next_resend = ref (now () +. t.resend_interval_s) in
  let q = t.queues.(rank).(src) in
  let fail fmt = comm_error ~rank ~peer:src ~tag fmt in
  (* one delivery attempt under the lock; None = nothing available yet *)
  let try_take () : msg option =
    if not t.reliable then
      (* raw transport: FIFO per channel, tags must match in order;
         corrupted payloads and duplicates are delivered as-is *)
      match Queue.peek_opt q with
      | Some m when m.tag = tag ->
          ignore (Queue.pop q);
          bump t (fun s -> s.delivered <- s.delivered + 1);
          Some m
      | Some m ->
          fail "unexpected tag %d from %d (wanted %d)" m.tag src tag
      | None -> None
    else begin
      let expected = t.expected.(rank).(src) in
      (* discard stale duplicates and frames whose checksum is wrong *)
      let rec sift () =
        match Queue.peek_opt q with
        | Some m when m.seqno < expected ->
            ignore (Queue.pop q);
            bump t (fun s -> s.dup_discarded <- s.dup_discarded + 1);
            sift ()
        | Some m when not (Int64.equal m.checksum (checksum_of m.value)) ->
            ignore (Queue.pop q);
            bump t (fun s -> s.checksum_failures <- s.checksum_failures + 1);
            sift ()
        | Some _ | None -> ()
      in
      sift ();
      match Queue.peek_opt q with
      | Some m when m.seqno = expected ->
          if m.tag <> tag then
            fail "unexpected tag %d from %d (wanted %d)" m.tag src tag;
          ignore (Queue.pop q);
          t.expected.(rank).(src) <- expected + 1;
          bump t (fun s -> s.delivered <- s.delivered + 1);
          Some m
      | Some _ | None ->
          (* gap: the expected frame was dropped in flight or discarded
             as corrupt (the queue head, if any, is a later frame).
             After a resend interval, recover the clean copy from the
             sender's retransmit buffer. *)
          if now () >= !next_resend then begin
            next_resend := now () +. t.resend_interval_s;
            match Hashtbl.find_opt t.pending.(src).(rank) expected with
            | Some m ->
                if m.tag <> tag then
                  fail "unexpected tag %d from %d (wanted %d)" m.tag src tag;
                t.expected.(rank).(src) <- expected + 1;
                bump t (fun s ->
                    s.resent <- s.resent + 1;
                    s.delivered <- s.delivered + 1);
                Some m
            | None -> None
          end
          else None
    end
  in
  let rec loop () : msg =
    check_poison t ~rank ~peer:src ~tag;
    let taken = with_lock t.locks.(rank) try_take in
    match taken with
    | Some m -> m
    | None ->
        if now () > deadline then
          fail "recv timed out after %.1fs (src %d, tag %d)" t.recv_timeout_s
            src tag;
        Unix.sleepf poll_sleep_s;
        loop ()
  in
  let m = loop () in
  note_received t rank ~src ~tag;
  m.value

(* generation-counted rendezvous shared by allreduce and barrier; polls
   with a deadline so a dead peer cannot strand the others *)
let rendezvous (t : t) (cell : cell) ~(rank : int) (contribution : float) :
    float =
  check_poison t ~rank ~peer:(-1) ~tag:(-1);
  Mutex.lock cell.m;
  let gen = cell.generation in
  cell.acc <- cell.acc +. contribution;
  cell.arrived <- cell.arrived + 1;
  if cell.arrived = t.size then begin
    cell.result <- cell.acc;
    cell.acc <- 0.0;
    cell.arrived <- 0;
    cell.generation <- gen + 1
  end
  else begin
    let deadline = now () +. t.recv_timeout_s in
    while
      cell.generation = gen && poisoned t = None && now () <= deadline
    do
      Mutex.unlock cell.m;
      Unix.sleepf poll_sleep_s;
      Mutex.lock cell.m
    done;
    if cell.generation = gen then begin
      let arrived = cell.arrived in
      Mutex.unlock cell.m;
      match poisoned t with
      | Some reason ->
          comm_error ~rank ~peer:(-1) ~tag:(-1) "peer failure: %s" reason
      | None ->
          comm_error ~rank ~peer:(-1) ~tag:(-1)
            "rendezvous timed out after %.1fs (%d of %d ranks arrived)"
            t.recv_timeout_s arrived t.size
    end
  end;
  let r = cell.result in
  Mutex.unlock cell.m;
  r

let allreduce_sum (t : t) ~(rank : int) (v : Value.t) : Value.t =
  Value.of_float (rendezvous t t.reduce ~rank (Value.to_float v))

let barrier (t : t) ~(rank : int) : unit =
  ignore (rendezvous t t.barrier_cell ~rank 0.0)

(** Machine hooks for one rank. *)
let hooks (t : t) ~(rank : int) : Machine.mpi_hooks =
  {
    Machine.rank;
    size = t.size;
    send = (fun ~dest ~tag v -> send t ~src:rank ~dest ~tag v);
    recv = (fun ~src ~tag -> recv t ~rank ~src ~tag);
    allreduce_sum = (fun v -> allreduce_sum t ~rank v);
    barrier = (fun () -> barrier t ~rank);
  }

(** Receive order recorded during a [Record]-mode run, oldest first. *)
let recorded_order (t : t) : (int * int * int) list =
  match t.mode with
  | Record log -> List.rev !log
  | Free | Replay _ -> []
