(** Fault models: what one injected fault does to its target datum.
    Site selection (which instruction / memory word) stays in
    {!Campaign} and is shared by all models, so paired campaigns under
    a common RNG stream differ only in the corruption applied.
    [Single_bit] draws exactly one [Rng.int], keeping default-model
    campaigns count-identical to their historical results. *)

type t =
  | Single_bit  (** flip one uniformly chosen bit *)
  | Double_adjacent
      (** flip two adjacent bits (a 2-bit multi-cell upset) *)
  | Burst of int
      (** flip a random non-empty pattern inside a [k]-bit window *)
  | Stuck_at  (** force one uniformly chosen bit to 0 or 1 *)

val to_string : t -> string
(** [single-bit], [double-adjacent], [burst-K], [stuck-at]. *)

val names : string list
(** Concrete spellings for did-you-mean suggestions. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [burst-K] accepts any K in [2,64]. *)

type corruption =
  | Bit of int  (** flip this one bit (the legacy fault constructors) *)
  | Masks of { and_mask : int64; or_mask : int64; xor_mask : int64 }
      (** generalized corruption, applied by [Machine.apply_masks] *)

val sample : t -> Rng.t -> bits:int -> corruption
(** Sample a corruption confined to the low [bits] bits of the datum. *)
