(** Fault models: what a single injected fault does to its target
    datum.

    The paper's campaigns (and PR 4's numbers) use the classic
    single-bit flip.  Real upsets are not always single-bit: multi-cell
    upsets flip physically adjacent bits, long transients corrupt a
    burst of bits, and latch defects hold a line at a fixed level.
    Each model samples a {!corruption} for a datum of a given bit
    width; the sampling of {e where} the fault lands (which dynamic
    instruction, which memory word) stays in [Campaign] and is shared
    by every model, so paired campaigns under a common RNG stream
    differ only in the corruption applied.

    [Single_bit] draws exactly one [Rng.int] — the same draw the
    pre-model code made — so campaigns under the default model are
    count-identical to their historical results. *)

type t =
  | Single_bit  (** flip one uniformly chosen bit *)
  | Double_adjacent
      (** flip two adjacent bits (a 2-bit multi-cell upset) *)
  | Burst of int
      (** flip a random non-empty pattern inside a [k]-bit window *)
  | Stuck_at  (** force one uniformly chosen bit to 0 or 1 *)

let to_string = function
  | Single_bit -> "single-bit"
  | Double_adjacent -> "double-adjacent"
  | Burst k -> Printf.sprintf "burst-%d" k
  | Stuck_at -> "stuck-at"

(** Concrete spellings for did-you-mean suggestions. *)
let names = [ "single-bit"; "double-adjacent"; "burst-4"; "stuck-at" ]

let of_string (s : string) : (t, string) result =
  match s with
  | "single-bit" -> Ok Single_bit
  | "double-adjacent" -> Ok Double_adjacent
  | "stuck-at" -> Ok Stuck_at
  | _ -> (
      let burst_k =
        if String.length s > 6 && String.equal (String.sub s 0 6) "burst-" then
          int_of_string_opt (String.sub s 6 (String.length s - 6))
        else None
      in
      match burst_k with
      | Some k when k >= 2 && k <= 64 -> Ok (Burst k)
      | Some _ -> Error (Printf.sprintf "burst width out of range [2,64]: %s" s)
      | None -> Error (Printf.sprintf "unknown fault model %S" s))

type corruption =
  | Bit of int  (** flip this one bit (the legacy fault constructors) *)
  | Masks of { and_mask : int64; or_mask : int64; xor_mask : int64 }
      (** generalized corruption, applied by [Machine.apply_masks] *)

(** Sample a corruption for a [bits]-wide datum.  Every model confines
    its corruption to the low [bits] bits, mirroring how single-bit
    flips always targeted the datum's own width. *)
let sample (m : t) (rng : Rng.t) ~(bits : int) : corruption =
  match m with
  | Single_bit -> Bit (Rng.int rng bits)
  | Double_adjacent ->
      (* a 1-bit datum cannot hold an adjacent pair; degrade to the
         only flip it supports rather than reject the site *)
      if bits < 2 then Bit 0
      else
        let b = Rng.int rng (bits - 1) in
        Masks
          {
            and_mask = -1L;
            or_mask = 0L;
            xor_mask = Int64.shift_left 3L b;
          }
  | Burst k ->
      let k = max 1 (min k bits) in
      let start = Rng.int rng (bits - k + 1) in
      (* random pattern in the window, anchored: the window's low bit
         always flips, so the burst is non-empty and starts at [start] *)
      let pattern =
        if k >= 64 then Rng.next_int64 rng
        else
          Int64.logand (Rng.next_int64 rng)
            (Int64.sub (Int64.shift_left 1L k) 1L)
      in
      let pattern = Int64.logor pattern 1L in
      Masks
        {
          and_mask = -1L;
          or_mask = 0L;
          xor_mask = Int64.shift_left pattern start;
        }
  | Stuck_at ->
      let b = Rng.int rng bits in
      let stuck_high = Rng.int rng 2 = 1 in
      if stuck_high then
        Masks
          { and_mask = -1L; or_mask = Int64.shift_left 1L b; xor_mask = 0L }
      else
        Masks
          {
            and_mask = Int64.lognot (Int64.shift_left 1L b);
            or_mask = 0L;
            xor_mask = 0L;
          }
