(** Deterministic pseudo-random numbers (splitmix64).

    Fault-injection campaigns must be reproducible run-to-run, so the
    framework never uses the ambient [Random] state: every campaign
    owns a [Rng.t] seeded explicitly. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound), by rejection sampling: a plain
    [v mod bound] over 2^62 draws is biased toward small residues
    whenever [bound] does not divide 2^62 (up to one part in
    [2^62 / bound]).  Draws above the largest multiple of [bound] are
    rejected and redrawn — at most one extra draw in expectation.  The
    arithmetic stays in [Int64] ([2^62] overflows OCaml's 63-bit
    native int). *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let b = Int64.of_int bound in
  let range = 0x4000_0000_0000_0000L (* 2^62 *) in
  let limit = Int64.sub range (Int64.rem range b) in
  let rec draw () =
    (* keep 62 bits so the accepted value fits a native int *)
    let v = Int64.shift_right_logical (next_int64 t) 2 in
    if Int64.compare v limit >= 0 then draw ()
    else Int64.to_int (Int64.rem v b)
  in
  draw ()

(** Uniform float in [0, 1). *)
let float (t : t) : float =
  let bits53 = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

(** Pick a uniform element of a non-empty array. *)
let choose (t : t) (a : 'a array) : 'a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

(** Fork an independent stream (for per-trial or per-domain use). *)
let split (t : t) : t = { state = next_int64 t }

(** The independent stream of trial [index] of a campaign seeded with
    [seed].  Derivation depends only on [(seed, index)] — never on how
    trials are scheduled — which is what makes parallel campaigns
    bit-identical regardless of worker count.  The pre-state
    [seed + golden * (index + 1)] is injective in [index], and one
    splitmix64 output step (a bijection) scatters adjacent indices
    across the state space, so neighboring trials never share a
    stream. *)
let derive ~(seed : int) ~(index : int) : t =
  if index < 0 then invalid_arg "Rng.derive: negative index";
  let t =
    {
      state =
        Int64.add (Int64.of_int seed)
          (Int64.mul golden (Int64.of_int (index + 1)));
    }
  in
  { state = next_int64 t }
