(** Fault-injection campaigns (the FlipIt substitute): sample fault
    sites uniformly from a target population, run once per fault, and
    classify each run as Verification Success, Verification Failed
    (SDC), or Crashed (trap or hang). *)

type outcome_class = Success | Failed | Crashed | Recovered

type counts = {
  success : int;
  failed : int;
  crashed : int;
  recovered : int;
      (** runs verified correct only after checkpoint rollback; always
          0 under the default [No_recovery] policy *)
  trials : int;
      (** classified trials: success + failed + crashed + recovered *)
  infra : int;
      (** trials lost to infrastructure failures, excluded from
          [trials] and the success rate *)
}

val zero_counts : counts
val add_outcome : counts -> outcome_class -> counts

val success_rate : counts -> float
(** Equation 1 of the paper (infra errors excluded; recovered runs are
    not natural successes and do not count). *)

val pp_counts : Format.formatter -> counts -> unit

(** Recovery policy of a campaign: [No_recovery] reproduces historical
    behavior exactly; [Rollback] arms the VM checkpoint/rollback with a
    restore budget. *)
type recovery = No_recovery | Rollback of { max_restores : int }

val recovery_to_string : recovery -> string
(** [none] or [rollback:N]. *)

val recovery_names : string list
(** Concrete spellings for did-you-mean suggestions. *)

val recovery_of_string : string -> (recovery, string) result
(** [none], [rollback] (default budget) or [rollback:N] with N >= 1. *)

val machine_recover : recovery -> Machine.recover option
(** The VM configuration a policy stands for. *)

val run_one :
  ?backend:Backend.t ->
  Prog.t ->
  budget:int ->
  ?watchdog:Watchdog.t ->
  ?recovery:recovery ->
  verify:(Machine.result -> bool) ->
  Machine.fault ->
  outcome_class
(** One faulty execution, classified.  Traps, instruction-budget
    exhaustion, and a tripped wall-clock [watchdog] are Crashed.  Under
    [Rollback], a finished verified run that took at least one restore
    is Recovered.  [backend] (default {!Backend.default}) picks the
    execution engine; outcomes are identical either way — a [Rollback]
    policy falls back to the interpreter automatically. *)

val run_one_with :
  (Machine.config -> Machine.result) ->
  budget:int ->
  ?watchdog:Watchdog.t ->
  ?recovery:recovery ->
  verify:(Machine.result -> bool) ->
  Machine.fault ->
  outcome_class
(** The classification kernel over an already-resolved execution
    function (see {!Backend.runner}); what {!trial_fun} uses so the
    compiled plan is resolved once, not per trial. *)

val classify_run :
  (Machine.config -> Machine.result) ->
  budget:int ->
  ?watchdog:Watchdog.t ->
  ?recovery:recovery ->
  verify:(Machine.result -> bool) ->
  Machine.fault option ->
  outcome_class
(** The same kernel over an {e optional} VM fault: [None] means the
    corruption is already baked into the program being run (the
    instruction-store surface, where a flipped encoding word is decoded
    back into a mutated program).  [run_one_with] is [classify_run]
    with the fault always present. *)

(** A fault site carries the width of the datum it corrupts: the
    paper's subjects are C programs whose integers are 32-bit, so
    integer-typed destinations expose 32 candidate bits while doubles
    expose all 64. *)
type site = { seq : int; bits : int }

type input_site = { addr : int; bits : int }

val event_bits : Prog.t -> Trace.event -> int
(** Width of the value written by a trace event (from its opcode or the
    symbol table's type of the touched memory). *)

val writing_sites : Prog.t -> Trace.t -> lo:int -> hi:int -> site array

type target =
  | Internal of { sites : site array }
      (** flip a destination bit of one of these dynamic instructions *)
  | Input of { entry_seq : int; sites : input_site array }
      (** flip a bit of an input memory word at region entry *)
  | Mem_over_time of { seqs : int array; sites : input_site array }
      (** flip a bit of one of these memory words at a random point of
          an execution window (soft errors in resident data) *)
  | Cache_struct of {
      geom : Cache_model.geometry;
      meta : bool;
          (** [true]: corrupt line metadata (tag, valid, dirty);
              [false]: corrupt a data word of a line *)
      seq_hi : int;
          (** faults fire uniformly in [\[0, seq_hi)] dynamic
              instructions (the fault-free instruction count) *)
      mem_words : int;  (** program memory size, for tag-width sizing *)
    }
      (** corrupt one cache line (any set, any way) of a write-back
          cache of [geom] at a uniform point of the execution *)
  | Istore_struct of { enc : Icodec.t }
      (** flip bits of the program's binary instruction encoding; the
          mutated word decodes into a different legal instruction or an
          [Illegal] trap, and the trial runs the re-baked program *)

val target_population : target -> int

val unreachable_sites : target -> instructions:int -> int list
(** Phantom-site detector: the seqs of [t] (sorted, deduplicated) that
    lie at or beyond the {e untraced} fault-free instruction count and
    so can never fire in a campaign run.  The traced/untraced seq
    contract demands this be empty for any target harvested from a
    trace of the same program; the test suite pins that for every
    registry app. *)

val sample_fault : ?model:Fault_model.t -> Rng.t -> target -> Machine.fault
(** Sample a fault under a fault model (default [Single_bit], whose RNG
    draw sequence is pinned to the historical code, keeping
    default-model campaigns count-identical).  Site selection is shared
    by all models; only the corruption differs.
    @raise Invalid_argument on [Istore_struct] — an istore corruption
    is not a VM fault; use {!sample_injection}. *)

(** One sampled corruption, of either kind: a seq-keyed VM fault, or a
    bit flip in the program's binary encoding (word index + masks) that
    the trial bakes into a mutated program before running. *)
type injection =
  | Vm_fault of Machine.fault
  | Istore_flip of {
      widx : int;  (** global word index into the {!Icodec.t} encoding *)
      and_mask : int64;
      or_mask : int64;
      xor_mask : int64;
    }

val sample_injection : ?model:Fault_model.t -> Rng.t -> target -> injection
(** Total over every target kind; on non-istore targets this is
    [Vm_fault (sample_fault ~model rng t)] with the identical RNG draw
    sequence, so it is a drop-in generalization of {!sample_fault}. *)

val internal_target : Prog.t -> Trace.t -> Region.instance -> target
val input_target : Prog.t -> Trace.t -> Access.t -> Region.instance -> target
val whole_program_target : Prog.t -> Trace.t -> target

val function_target : Prog.t -> Trace.t -> string -> target
(** Sites restricted to one function's dynamic instructions. *)

exception Unknown_symbol of { name : string; available : string list }
(** A memory target named a symbol the program does not declare;
    [available] lists the valid global symbol names, sorted. *)

val global_symbol_names : Prog.t -> string list
(** Global symbol names, sorted. *)

val memory_during_function_target :
  Prog.t -> Trace.t -> fname:string -> vars:string list -> target
(** Soft errors in the memory of named variables while [fname] runs —
    the Use Case 1 scenario (v/iv corruption during sprnvc).
    @raise Unknown_symbol when a variable is not a known symbol. *)

val cache_target :
  ?geom:Cache_model.geometry ->
  meta:bool ->
  Prog.t ->
  clean_instructions:int ->
  target
(** Cache-structure target (default geometry
    {!Cache_model.default_geometry}): [meta] picks the metadata surface
    (tag/valid/dirty) over the data-word surface. *)

val istore_target : Prog.t -> target
(** Instruction-store target: every bit of the program's binary
    encoding (see {!Icodec.encode}). *)

val structure_target :
  ?geom:Cache_model.geometry ->
  Structure.t ->
  Prog.t ->
  Trace.t ->
  clean_instructions:int ->
  target
(** The whole-program target of a named microarchitectural structure.
    [Structure.Reg] is the historical register-file surface —
    byte-for-byte the same target (and RNG stream) as
    {!whole_program_target}. *)

(** The IR level a target's dynamic sequence numbers refer to:
    [Native] (historical default) means sites were sampled from the
    trace of the very program being injected; [Reference] means they
    were sampled at the unoptimized reference level and translated. *)
type site_level = Native | Reference

val site_level_to_string : site_level -> string

exception Untranslatable_site of { seq : int; total : int; unmapped : int }
(** A reference-level site has no image in the transformed program;
    the campaign refuses rather than silently re-sampling. *)

val translate_target : map_seq:(int -> int option) -> target -> target
(** Rewrite every dynamic seq of a target through [map_seq]
    (reference seq -> transformed seq); memory addresses are kept.
    @raise Untranslatable_site if any position has no image. *)

type config = {
  seed : int;
  confidence : float;
  margin : float;
  max_trials : int option;  (** cap for quick runs; [None] = full design *)
  budget_factor : int;      (** hang budget = factor x fault-free count *)
  model : Fault_model.t;    (** corruption applied per fault *)
  recovery : recovery;      (** [No_recovery] keeps historical numbers *)
  site_level : site_level;
      (** declared sampling level; anything but [Native] marks the
          journal tag so mixed-level resumes are impossible *)
  structure : Structure.t;
      (** the microarchitectural surface this campaign declares; the
          {e target} determines the actual sites (build it with
          {!structure_target} so the two agree).  Anything but
          [Structure.Reg] suffixes the journal tag, so per-structure
          journals can never silently resume one another. *)
}

val default_config : config
(** Seed 42, the paper's 95%/3% design, budget factor 20, single-bit
    flips, no recovery. *)

val trials_for : config -> target -> int

(** Execution knobs, orthogonal to the statistical design: worker
    domains, on-disk journal + resume, wall-clock watchdog, bounded
    retry, and Wilson-interval early stopping.  Defaults reproduce the
    sequential in-memory behavior. *)
type exec = {
  jobs : int;  (** worker domains; counts are identical for any value *)
  journal : string option;
      (** append-only trial log (csexp, fsync'd per batch) *)
  resume : bool;  (** skip trials already journaled *)
  watchdog_s : float option;
      (** per-trial wall-clock deadline; tripping it is Crashed *)
  early_stop : bool;
      (** stop once the Wilson interval half-width reaches the
          configured margin (evaluated at batch boundaries) *)
  batch : int;
  max_retries : int;
  retry_backoff_s : float;
  retry_jitter : float;
      (** deterministic per-(trial, attempt) backoff jitter; timing
          only, counts unaffected *)
  on_progress : (Executor.progress -> unit) option;
  metrics : Obs.t option;
      (** when set, the executor records per-phase wall time and
          trial/retry/infra counters there (see {!Executor.config}) *)
  backend : Backend.t;
      (** execution engine for the trials (default {!Backend.default},
          the compiled backend).  Counts are identical for either
          value and the journal tag does not mention it, so journals
          written under one backend resume under the other; only the
          wall-clock changes. *)
}

val default_exec : exec

(** Honest campaign result: counts plus how much of the plan ran. *)
type run_report = {
  counts : counts;
  planned : int;
  stopped_early : bool;
  resumed : int;  (** trials loaded from the journal, not re-run *)
  wall_s : float;
}

val run_report :
  Prog.t ->
  verify:(Machine.result -> bool) ->
  clean_instructions:int ->
  ?cfg:config ->
  ?exec:exec ->
  target ->
  run_report
(** Run a campaign on the resilient executor.  Trial [i] samples its
    fault from [Rng.derive ~seed ~index:i], so the counts are a pure
    function of the configuration: [--jobs N], scheduling, and
    kill-then-resume cannot change them.  Trials that raise are retried
    with bounded backoff and then counted as [infra]; nothing aborts
    the campaign. *)

val run :
  Prog.t ->
  verify:(Machine.result -> bool) ->
  clean_instructions:int ->
  ?cfg:config ->
  ?exec:exec ->
  target ->
  counts
(** [run_report] without the provenance. *)

(** {2 Campaign identity and the per-trial kernel}

    Exposed so other engines over the same trial model — notably the
    campaign server's forked workers — run the {e exact same} per-trial
    function and write journals under the {e exact same} tag as the
    in-process executor, which is what makes server-mode counts
    byte-identical to [--jobs 1]. *)

val campaign_tag : config -> population:int -> trials:int -> string
(** The journal identity of a campaign.  Byte-identical to the
    historical tag under the default model/policy; otherwise suffixed
    with the model, recovery policy, and site level so journals
    recorded under different semantics can never silently resume one
    another. *)

val trial_fun :
  ?backend:Backend.t ->
  Prog.t ->
  verify:(Machine.result -> bool) ->
  clean_instructions:int ->
  ?cfg:config ->
  ?watchdog_s:float ->
  target ->
  int ->
  outcome_class
(** The deterministic per-trial kernel: trial [i] derives its RNG from
    [(cfg.seed, i)], samples one fault, runs one classified execution.
    Pure in the index — which process, worker, or [backend] evaluates
    it cannot matter.  The backend runner (and, for the compiled
    default, the program's plan) is resolved when [trial_fun] is
    applied to the target, before any trial runs — call it in the
    parent before forking workers or spawning domains. *)

val encode_outcome : outcome_class -> string
(** Journal/wire encoding of an outcome: [S], [F], [C], or [R]. *)

val decode_outcome : string -> outcome_class option

val counts_of_outcomes : outcome_class Executor.outcome array -> counts
(** Fold executor outcomes into counts ([Infra_error] increments
    [infra]). *)

(** {2 Campaign submission (the wire API)}

    A submittable whole-program campaign: the app spelling, seed, trial
    cap, fault model, and recovery policy — everything a campaign
    server needs to reconstruct the statistical design.  Deliberately
    not the program itself: the server resolves and bakes the app on
    its side (content-addressed cache), so a submission is a few
    hundred bytes. *)
type spec = {
  sp_app : string;  (** [CG], [CG@all], [IS@opt:fold+dce], ... *)
  sp_seed : int;
  sp_trials : int option;  (** [max_trials]; [None] = full design *)
  sp_model : Fault_model.t;
  sp_recovery : recovery;
  sp_structure : Structure.t;
      (** fault surface; the server builds the matching target *)
}

val default_spec : spec
(** App [IS], the default seed, a 500-trial cap, single-bit flips, no
    recovery, the register-file surface. *)

val config_of_spec : spec -> config
(** The statistical design a submission stands for ([default_config]
    with the spec's seed, cap, model, and recovery). *)

val spec_to_csexp : spec -> Csexp.t
val spec_of_csexp : Csexp.t -> (spec, string) result

val counts_to_csexp : counts -> Csexp.t
(** Counts on the wire, field-ordered and versioned — the encoding the
    chaos determinism gate compares byte-for-byte. *)

val counts_of_csexp : Csexp.t -> (counts, string) result
