(** Fault-injection campaigns (the FlipIt substitute).

    A campaign samples fault sites uniformly from a target population,
    runs the program once per sampled fault, and classifies each run
    under the paper's fault-manifestation model:
    {ul
    {- Verification Success — the run finishes and the application's
       verification accepts the result (bit-exact or within the
       application's own tolerance);}
    {- Verification Failed — the run finishes but verification rejects
       the result (silent data corruption);}
    {- Crashed — trap, or hang detected by the instruction budget.}}

    Targets: the {e internal locations} of a code-region instance are
    the destinations of its dynamic instructions (a [Flip_write] at a
    dynamic sequence number inside the instance); its {e input
    locations} are the memory words the fault-free DDDG classifies as
    region inputs (a [Flip_mem] at the instance entry). *)

type outcome_class = Success | Failed | Crashed | Recovered

type counts = {
  success : int;
  failed : int;
  crashed : int;
  recovered : int;
      (** runs that verified correct only after checkpoint rollback;
          always 0 under the default [No_recovery] policy, so historical
          counts are untouched *)
  trials : int;
  infra : int;
      (** trials lost to infrastructure failures (a worker that kept
          raising after bounded retries).  Counted separately and
          excluded from [trials] and the success rate, so an infra
          fault can never masquerade as an SDC or a crash. *)
}

let zero_counts =
  { success = 0; failed = 0; crashed = 0; recovered = 0; trials = 0; infra = 0 }

let add_outcome (c : counts) = function
  | Success -> { c with success = c.success + 1; trials = c.trials + 1 }
  | Failed -> { c with failed = c.failed + 1; trials = c.trials + 1 }
  | Crashed -> { c with crashed = c.crashed + 1; trials = c.trials + 1 }
  | Recovered -> { c with recovered = c.recovered + 1; trials = c.trials + 1 }

(** Success rate (Equation 1).  Infra errors are not trials: they say
    nothing about the application's resilience.  Recovered runs are not
    successes either: they measure the recovery mechanism, not the
    application's {e natural} resilience. *)
let success_rate (c : counts) : float =
  if c.trials = 0 then 0.0
  else Float.of_int c.success /. Float.of_int c.trials

let pp_counts ppf (c : counts) =
  Fmt.pf ppf "success=%d failed=%d crashed=%d trials=%d rate=%.3f" c.success
    c.failed c.crashed c.trials (success_rate c);
  if c.recovered > 0 then Fmt.pf ppf " recovered=%d" c.recovered;
  if c.infra > 0 then Fmt.pf ppf " infra-errors=%d" c.infra

(** Recovery policy of a campaign: [No_recovery] reproduces the
    historical behavior exactly; [Rollback] arms the VM's
    checkpoint/rollback with a restore budget. *)
type recovery = No_recovery | Rollback of { max_restores : int }

let recovery_to_string = function
  | No_recovery -> "none"
  | Rollback { max_restores } -> Printf.sprintf "rollback:%d" max_restores

(** Concrete spellings for did-you-mean suggestions. *)
let recovery_names = [ "none"; "rollback"; "rollback:3" ]

let recovery_of_string (s : string) : (recovery, string) result =
  match s with
  | "none" -> Ok No_recovery
  | "rollback" ->
      Ok (Rollback { max_restores = Machine.default_recover.max_restores })
  | _ -> (
      let n =
        if String.length s > 9 && String.equal (String.sub s 0 9) "rollback:"
        then int_of_string_opt (String.sub s 9 (String.length s - 9))
        else None
      in
      match n with
      | Some k when k >= 1 -> Ok (Rollback { max_restores = k })
      | Some _ -> Error (Printf.sprintf "rollback budget must be >= 1: %s" s)
      | None -> Error (Printf.sprintf "unknown recovery policy %S" s))

let machine_recover = function
  | No_recovery -> None
  | Rollback { max_restores } ->
      Some { Machine.default_recover with max_restores }

(** The classification kernel over a {e resolved} execution function
    and an optional VM fault.  [None] is the instruction-store case:
    the corruption already lives in the (mutated) program the runner
    was resolved for, so the run itself is fault-free. *)
let classify_run (run : Machine.config -> Machine.result) ~(budget : int)
    ?(watchdog : Watchdog.t option) ?(recovery = No_recovery)
    ~(verify : Machine.result -> bool) (fault : Machine.fault option) :
    outcome_class =
  let tick = Option.map (fun w () -> Watchdog.check w) watchdog in
  match
    run
      {
        Machine.default_config with
        budget;
        fault;
        tick;
        recover = machine_recover recovery;
      }
  with
  | r -> (
      match r.outcome with
      | Machine.Finished ->
          if not (verify r) then Failed
          else if r.restores > 0 then Recovered
          else Success
      | Machine.Trapped _ | Machine.Budget_exceeded -> Crashed)
  | exception Watchdog.Timeout _ -> Crashed

(** {!classify_run} with a mandatory VM fault: the historical kernel
    {!trial_fun} classifies register/memory-surface trials through. *)
let run_one_with (run : Machine.config -> Machine.result) ~(budget : int)
    ?(watchdog : Watchdog.t option) ?(recovery = No_recovery)
    ~(verify : Machine.result -> bool) (fault : Machine.fault) : outcome_class
    =
  classify_run run ~budget ?watchdog ~recovery ~verify (Some fault)

(** Run one faulty execution and classify it.  [verify] receives the
    machine result of a {e finished} run and decides Success/Failed;
    traps, budget exhaustion, and a tripped wall-clock [watchdog]
    classify as Crashed without consulting it.  Under a [Rollback]
    policy, a run that finishes verified but took at least one restore
    classifies as Recovered: correct output, but not naturally so.
    [backend] picks the execution engine; the compiled default is
    count- and outcome-identical to the interpreter, and a [Rollback]
    policy falls back to the interpreter automatically (checkpointing
    is interpreter-only machinery). *)
let run_one ?(backend = Backend.default) (prog : Prog.t) ~(budget : int)
    ?(watchdog : Watchdog.t option) ?(recovery = No_recovery)
    ~(verify : Machine.result -> bool) (fault : Machine.fault) : outcome_class
    =
  run_one_with (Backend.runner backend prog) ~budget ?watchdog ~recovery
    ~verify fault

(* --- fault-site populations ------------------------------------------ *)

(** A fault site carries the width of the datum it corrupts: the
    paper's subjects are C programs whose integers are 32-bit, so
    integer-typed destinations expose 32 candidate bits while doubles
    expose all 64. *)
type site = { seq : int; bits : int }

type input_site = { addr : int; bits : int }

(* bit width of the value written by a trace event *)
let event_bits (prog : Prog.t) (e : Trace.event) : int =
  let of_ty = function Ty.F64 -> 64 | Ty.I64 -> 32 in
  let of_addr a = match Prog.type_of_addr prog a with
    | Some t -> of_ty t
    | None -> 64
  in
  match e.op with
  | Trace.OBin op -> if Op.bin_is_float op then 64 else 32
  | Trace.OUn op -> (
      match op with
      | Op.Fneg | Op.Fabs | Op.Fsqrt | Op.Fsin | Op.Fcos | Op.FloatOfInt
      | Op.F32round ->
          64
      | Op.Neg | Op.Not | Op.Trunc32 | Op.IntOfFloat -> 32)
  | Trace.OStore -> (
      match e.writes with
      | [| (Loc.Mem a, _) |] -> of_addr a
      | _ -> 64)
  | Trace.OLoad -> (
      (* the loaded value's width is that of its memory source *)
      match
        Array.find_opt (fun (l, _) -> Loc.is_mem l) e.reads
      with
      | Some (Loc.Mem a, _) -> of_addr a
      | Some _ | None -> 64)
  | Trace.OIntr _ -> 64
  | Trace.OConst | Trace.OJmp | Trace.OBr _ | Trace.OCall | Trace.ORet
  | Trace.OMark _ ->
      64

(** Fault sites of the value-writing instructions in the event-index
    range [lo, hi) of [trace]. *)
let writing_sites (prog : Prog.t) (trace : Trace.t) ~(lo : int) ~(hi : int) :
    site array =
  let acc = ref [] in
  for i = hi - 1 downto lo do
    let e = Trace.get trace i in
    if Array.length e.writes > 0 then
      acc := { seq = e.seq; bits = event_bits prog e } :: !acc
  done;
  Array.of_list !acc

type target =
  | Internal of { sites : site array }
      (** flip a destination bit of one of these dynamic instructions *)
  | Input of { entry_seq : int; sites : input_site array }
      (** flip a bit of an input memory word at region entry *)
  | Mem_over_time of { seqs : int array; sites : input_site array }
      (** flip a bit of one of these memory words at a random point of
          an execution window (soft errors in resident data) *)
  | Cache_struct of {
      geom : Cache_model.geometry;
      meta : bool;
          (** [true]: the metadata surface (tag/valid/dirty per line);
              [false]: the data words of the lines *)
      seq_hi : int;
          (** the corruption lands at a uniform dynamic seq in
              [0, seq_hi) — the whole-run window, kept as a range
              rather than an explicit seq array so the population
              stays O(1) in memory *)
      mem_words : int;  (** program memory size, fixes the tag width *)
    }
      (** microarchitectural cache-structure faults; trials arm a
          [Machine.Cache_fault], which routes the run through the
          simulated cache *)
  | Istore_struct of { enc : Icodec.t }
      (** bit flips in the binary-encoded instruction store: persistent
          (present from the first instruction), so the population has
          no time dimension — one site per bit of every encoded word *)

(* injectable bits per cache line under each surface: tag + valid +
   dirty for the metadata, 64 per data word otherwise *)
let cache_line_bits ~(geom : Cache_model.geometry) ~(mem_words : int)
    ~(meta : bool) : int =
  if meta then Cache_model.tag_bits geom ~mem_words + 2
  else 64 * geom.Cache_model.line_words

let target_population = function
  | Internal { sites } ->
      Array.fold_left (fun a (s : site) -> a + s.bits) 0 sites
  | Input { sites; _ } ->
      Array.fold_left (fun a (s : input_site) -> a + s.bits) 0 sites
  | Mem_over_time { seqs; sites } ->
      Array.length seqs
      * Array.fold_left (fun a (s : input_site) -> a + s.bits) 0 sites
  | Cache_struct { geom; meta; seq_hi; mem_words } ->
      seq_hi * Cache_model.lines geom * cache_line_bits ~geom ~mem_words ~meta
  | Istore_struct { enc } -> 64 * Icodec.total_words enc

(** Phantom-site detector.  Sites are harvested from {e traced} runs
    and injected into {e untraced} ones, so the contract is that both
    produce the same dynamic seq stream; a harvested seq at or beyond
    the untraced fault-free instruction count can never fire and its
    trials silently measure nothing.  Returns the offending seqs
    (sorted, deduplicated) given the untraced count — empty is the only
    acceptable answer, and the test suite pins it for every registry
    app.  This is the check that catches the traced-only seq
    consumption bug class. *)
let unreachable_sites (t : target) ~(instructions : int) : int list =
  let bad seq = seq >= instructions in
  let seqs =
    match t with
    | Internal { sites } ->
        Array.to_list sites |> List.filter_map (fun (s : site) ->
            if bad s.seq then Some s.seq else None)
    | Input { entry_seq; _ } -> if bad entry_seq then [ entry_seq ] else []
    | Mem_over_time { seqs; _ } -> Array.to_list seqs |> List.filter bad
    | Cache_struct { seq_hi; _ } ->
        (* the window is a range: its last seq is the only candidate *)
        if seq_hi > 0 && bad (seq_hi - 1) then [ seq_hi - 1 ] else []
    | Istore_struct _ -> []  (* persistent faults carry no seqs *)
  in
  List.sort_uniq compare seqs

(** Sample a fault for the target under a fault model.  Site selection
    is shared by all models; only the corruption differs.  The RNG draw
    order under [Single_bit] (site choose, then bit; for
    [Mem_over_time], site choose, bit, then window seq — record fields
    evaluate right-to-left) is pinned by the historical code, keeping
    default-model campaigns count-identical. *)
let sample_fault ?(model = Fault_model.Single_bit) (rng : Rng.t) (t : target) :
    Machine.fault =
  match t with
  | Internal { sites } ->
      let s = Rng.choose rng sites in
      (match Fault_model.sample model rng ~bits:s.bits with
      | Fault_model.Bit bit -> Machine.Flip_write { seq = s.seq; bit }
      | Fault_model.Masks { and_mask; or_mask; xor_mask } ->
          Machine.Mask_write { seq = s.seq; and_mask; or_mask; xor_mask })
  | Input { entry_seq; sites } ->
      let s = Rng.choose rng sites in
      (match Fault_model.sample model rng ~bits:s.bits with
      | Fault_model.Bit bit ->
          Machine.Flip_mem { seq = entry_seq; addr = s.addr; bit }
      | Fault_model.Masks { and_mask; or_mask; xor_mask } ->
          Machine.Mask_mem
            { seq = entry_seq; addr = s.addr; and_mask; or_mask; xor_mask })
  | Mem_over_time { seqs; sites } ->
      let s = Rng.choose rng sites in
      let c = Fault_model.sample model rng ~bits:s.bits in
      let seq = Rng.choose rng seqs in
      (match c with
      | Fault_model.Bit bit -> Machine.Flip_mem { seq; addr = s.addr; bit }
      | Fault_model.Masks { and_mask; or_mask; xor_mask } ->
          Machine.Mask_mem { seq; addr = s.addr; and_mask; or_mask; xor_mask })
  | Cache_struct { geom; meta; seq_hi; mem_words } ->
      (* draw order (pinned for these structures from their first
         release): set, way, field slot / data word, corruption, seq.
         Metadata slots are uniform over the line's injectable bits, so
         the tag is hit [tag_bits] times as often as valid or dirty —
         matching the flat bits-are-sites design of every other
         surface. *)
      let set = Rng.int rng geom.Cache_model.sets in
      let way = Rng.int rng geom.Cache_model.ways in
      let field, bits =
        if meta then begin
          let tb = Cache_model.tag_bits geom ~mem_words in
          let slot = Rng.int rng (tb + 2) in
          if slot < tb then (Cache_model.Tag, tb)
          else if slot = tb then (Cache_model.Valid, 1)
          else (Cache_model.Dirty, 1)
        end
        else (Cache_model.Word (Rng.int rng geom.Cache_model.line_words), 64)
      in
      let and_mask, or_mask, xor_mask =
        match Fault_model.sample model rng ~bits with
        | Fault_model.Bit bit -> (-1L, 0L, Int64.shift_left 1L bit)
        | Fault_model.Masks { and_mask; or_mask; xor_mask } ->
            (and_mask, or_mask, xor_mask)
      in
      let seq = Rng.int rng (max 1 seq_hi) in
      Machine.Cache_fault
        {
          seq;
          geom;
          loc = { Cache_model.set; way; field };
          and_mask;
          or_mask;
          xor_mask;
        }
  | Istore_struct _ ->
      invalid_arg
        "Campaign.sample_fault: instruction-store faults mutate the program, \
         not the VM; use sample_injection"

(** A sampled corruption, generalized over how it is delivered: as a
    VM fault armed on the unmodified program, or as a persistent flip
    of one encoded instruction word — the instruction-store case, where
    the corrupted program is re-baked per trial. *)
type injection =
  | Vm_fault of Machine.fault
  | Istore_flip of {
      widx : int;  (** global word index into the encoded program *)
      and_mask : int64;
      or_mask : int64;
      xor_mask : int64;
    }

(** {!sample_fault} generalized to every target.  Draw order for the
    instruction store: word index, then corruption over all 64 bits. *)
let sample_injection ?(model = Fault_model.Single_bit) (rng : Rng.t)
    (t : target) : injection =
  match t with
  | Istore_struct { enc } ->
      let widx = Rng.int rng (Icodec.total_words enc) in
      let and_mask, or_mask, xor_mask =
        match Fault_model.sample model rng ~bits:64 with
        | Fault_model.Bit bit -> (-1L, 0L, Int64.shift_left 1L bit)
        | Fault_model.Masks { and_mask; or_mask; xor_mask } ->
            (and_mask, or_mask, xor_mask)
      in
      Istore_flip { widx; and_mask; or_mask; xor_mask }
  | Internal _ | Input _ | Mem_over_time _ | Cache_struct _ ->
      Vm_fault (sample_fault ~model rng t)

(** Derive the internal-location target of a region instance. *)
let internal_target (prog : Prog.t) (trace : Trace.t)
    (inst : Region.instance) : target =
  Internal { sites = writing_sites prog trace ~lo:inst.lo ~hi:inst.hi }

(** Derive the input-location target of a region instance, using the
    fault-free DDDG for input classification. *)
let input_target (prog : Prog.t) (trace : Trace.t) (access : Access.t)
    (inst : Region.instance) : target =
  let g = Dddg.build trace access ~lo:inst.lo ~hi:inst.hi in
  let entry_seq = (Trace.get trace inst.lo).seq in
  let sites =
    Dddg.input_mem_addrs g
    |> List.map (fun addr ->
           let bits =
             match Prog.type_of_addr prog addr with
             | Some Ty.I64 -> 32
             | Some Ty.F64 | None -> 64
           in
           { addr; bits })
    |> Array.of_list
  in
  Input { entry_seq; sites }

(** Whole-program target: every value-writing dynamic instruction. *)
let whole_program_target (prog : Prog.t) (trace : Trace.t) : target =
  Internal { sites = writing_sites prog trace ~lo:0 ~hi:(Trace.length trace) }

(** Fault sites restricted to the dynamic instructions of one function
    (all its activations).  Used to measure the resilience of a
    specific routine, e.g. the hardened [sprnvc] of Use Case 1. *)
let function_target (prog : Prog.t) (trace : Trace.t) (fname : string) :
    target =
  let fidx = Prog.func_index prog fname in
  let sites = ref [] in
  Trace.iter
    (fun (e : Trace.event) ->
      if e.fidx = fidx && Array.length e.writes > 0 then
        sites := { seq = e.seq; bits = event_bits prog e } :: !sites)
    trace;
  Internal { sites = Array.of_list !sites }

exception
  Unknown_symbol of {
    name : string;
    available : string list;  (** global symbol names, sorted *)
  }
(** Raised when a memory target names a symbol the program does not
    declare; carries the valid choices so callers (the CLI) can render
    an actionable message instead of a backtrace. *)

let () =
  Printexc.register_printer (function
    | Unknown_symbol { name; available } ->
        Some
          (Printf.sprintf "unknown symbol %S; available symbols: %s" name
             (String.concat ", " available))
    | _ -> None)

(** Global symbol names of [prog], sorted (for error messages). *)
let global_symbol_names (prog : Prog.t) : string list =
  prog.Prog.symbols
  |> List.filter_map (fun (s : Prog.symbol) ->
         if String.equal s.Prog.sym_scope "" then Some s.Prog.sym_name else None)
  |> List.sort_uniq String.compare

(** Soft errors in the memory of named variables while [fname] is
    executing: the Use Case 1 scenario — corruption landing in the
    global [v]/[iv] arrays during [sprnvc], which the hardened variant
    overwrites at copy-back. *)
let memory_during_function_target (prog : Prog.t) (trace : Trace.t)
    ~(fname : string) ~(vars : string list) : target =
  let fidx = Prog.func_index prog fname in
  let seqs = ref [] in
  Trace.iter
    (fun (e : Trace.event) -> if e.fidx = fidx then seqs := e.seq :: !seqs)
    trace;
  let sites =
    List.concat_map
      (fun name ->
        match Prog.find_symbol prog name with
        | None ->
            raise
              (Unknown_symbol { name; available = global_symbol_names prog })
        | Some s ->
            let size = List.fold_left ( * ) 1 s.Prog.sym_dims in
            let bits = match s.Prog.sym_ty with Ty.I64 -> 32 | Ty.F64 -> 64 in
            List.init (max 1 size) (fun k -> { addr = s.Prog.sym_addr + k; bits }))
      vars
  in
  Mem_over_time { seqs = Array.of_list !seqs; sites = Array.of_list sites }

(* --- microarchitectural structure targets ------------------------------ *)

(** Cache-structure target over the whole run: the corruption lands at
    a uniform dynamic seq in [0, clean_instructions). *)
let cache_target ?(geom = Cache_model.default_geometry) ~(meta : bool)
    (prog : Prog.t) ~(clean_instructions : int) : target =
  Cache_struct
    {
      geom;
      meta;
      seq_hi = max 1 clean_instructions;
      mem_words = prog.Prog.mem_size;
    }

(** Instruction-store target: every bit of the program's binary
    encoding. *)
let istore_target (prog : Prog.t) : target =
  Istore_struct { enc = Icodec.encode prog }

(** The whole-program target of a named structure.  [Structure.Reg] is
    the historical register-file surface — byte-for-byte the same
    target (and RNG stream) as {!whole_program_target}. *)
let structure_target ?geom (s : Structure.t) (prog : Prog.t) (trace : Trace.t)
    ~(clean_instructions : int) : target =
  match s with
  | Structure.Reg -> whole_program_target prog trace
  | Structure.Cache_tag -> cache_target ?geom ~meta:true prog ~clean_instructions
  | Structure.Cache_data ->
      cache_target ?geom ~meta:false prog ~clean_instructions
  | Structure.Istore -> istore_target prog

(* --- site levels and target translation -------------------------------- *)

(** The IR level a target's dynamic sequence numbers refer to.
    [Native] (the historical default): sites were sampled from the
    trace of the very program being injected.  [Reference]: sites were
    sampled at the unoptimized reference level and translated onto a
    transformed program — campaigns declare it so a journal recorded
    under one level can never silently resume under the other. *)
type site_level = Native | Reference

let site_level_to_string = function
  | Native -> "native"
  | Reference -> "reference"

exception
  Untranslatable_site of {
    seq : int;       (** first reference-level seq with no image *)
    total : int;     (** dynamic positions the target carries *)
    unmapped : int;  (** how many of them failed to translate *)
  }
(** Raised by {!translate_target} when the declared reference level
    cannot be honored: a sampled site's instruction has no image in the
    transformed program (e.g. dead code the optimizer deleted).  The
    campaign refuses rather than silently re-sampling. *)

let () =
  Printexc.register_printer (function
    | Untranslatable_site { seq; total; unmapped } ->
        Some
          (Printf.sprintf
             "Campaign.Untranslatable_site: %d of %d reference-level fault \
              site(s) have no image in the transformed program (first: seq \
              %d); run without site translation, or restrict the pipeline to \
              translation-total passes"
             unmapped total seq)
    | _ -> None)

(** Rewrite every dynamic sequence number of a target through
    [map_seq] (reference seq -> transformed seq).  Memory addresses are
    left alone: the transformations that use this keep the memory
    layout intact.  @raise Untranslatable_site if any position fails. *)
let translate_target ~(map_seq : int -> int option) (t : target) : target =
  let total = ref 0 in
  let failures = ref [] in
  let tr seq =
    incr total;
    match map_seq seq with
    | Some s -> s
    | None ->
        failures := seq :: !failures;
        -1
  in
  let t' =
    match t with
    | Internal { sites } ->
        Internal
          { sites = Array.map (fun s -> { s with seq = tr s.seq }) sites }
    | Input { entry_seq; sites } -> Input { entry_seq = tr entry_seq; sites }
    | Mem_over_time { seqs; sites } ->
        Mem_over_time { seqs = Array.map tr seqs; sites }
    | Cache_struct _ | Istore_struct _ ->
        (* structure targets are sampled from the program being injected
           (a seq range / its own encoding) — there is no reference
           level to translate from *)
        invalid_arg
          "Campaign.translate_target: microarchitectural structure targets \
           are native-level only"
  in
  match List.rev !failures with
  | [] -> t'
  | seq :: _ ->
      raise
        (Untranslatable_site
           { seq; total = !total; unmapped = List.length !failures })

(* --- campaigns -------------------------------------------------------- *)

type config = {
  seed : int;
  confidence : float;
  margin : float;
  max_trials : int option;  (** cap for quick runs; [None] = statistical n *)
  budget_factor : int;      (** hang budget = factor * fault-free count *)
  model : Fault_model.t;    (** corruption applied per fault *)
  recovery : recovery;      (** [No_recovery] keeps historical numbers *)
  site_level : site_level;
      (** which IR level the target's seqs were sampled at; [Native]
          keeps historical behavior and journal tags *)
  structure : Structure.t;
      (** which microarchitectural structure the campaign injects into.
          Informational for the journal tag (the target determines the
          actual sites — build it with {!structure_target} so the two
          agree); [Structure.Reg] keeps historical tags byte-identical *)
}

let default_config =
  {
    seed = 42;
    confidence = 0.95;
    margin = 0.03;
    max_trials = None;
    budget_factor = 20;
    model = Fault_model.Single_bit;
    recovery = No_recovery;
    site_level = Native;
    structure = Structure.Reg;
  }

(** Number of trials the configuration implies for a target. *)
let trials_for (cfg : config) (t : target) : int =
  let n =
    Stats.sample_size ~population:(target_population t)
      ~confidence:cfg.confidence ~margin:cfg.margin
  in
  match cfg.max_trials with Some m -> min m n | None -> n

(* --- resilient execution (ft_runtime) ---------------------------------- *)

(** Execution knobs of a campaign, orthogonal to the statistical design
    in {!config}: parallelism, checkpointing, hang watchdog, retry
    policy, and early stopping.  All defaults reproduce the historical
    sequential in-memory behavior. *)
type exec = {
  jobs : int;  (** worker domains; results are identical for any value *)
  journal : string option;
      (** append-only on-disk trial log (csexp, fsync'd per batch) *)
  resume : bool;  (** skip trials already in the journal *)
  watchdog_s : float option;
      (** per-trial wall-clock deadline supplementing the instruction
          budget; a tripped watchdog classifies as Crashed *)
  early_stop : bool;
      (** stop at a batch boundary once the Wilson interval on the
          success rate is within the configured margin *)
  batch : int;  (** journal/early-stop granularity (fixed boundaries) *)
  max_retries : int;
  retry_backoff_s : float;
  retry_jitter : float;
      (** deterministic per-(trial, attempt) backoff jitter; timing
          only, counts are unaffected (see {!Executor.config}) *)
  on_progress : (Executor.progress -> unit) option;
  metrics : Obs.t option;  (** executor phase/counter registry *)
  backend : Backend.t;
      (** execution engine for the trials; counts are identical for
          either value (the compiled backend is bit-identical to the
          interpreter and is excluded from the journal tag), only the
          wall-clock changes *)
}

let default_exec =
  {
    jobs = 1;
    journal = None;
    resume = false;
    watchdog_s = None;
    early_stop = false;
    batch = Executor.default_config.Executor.batch;
    max_retries = Executor.default_config.Executor.max_retries;
    retry_backoff_s = Executor.default_config.Executor.retry_backoff_s;
    retry_jitter = Executor.default_config.Executor.retry_jitter;
    on_progress = None;
    metrics = None;
    backend = Backend.default;
  }

(** Honest campaign result: the counts plus how much of the plan
    actually ran and why. *)
type run_report = {
  counts : counts;
  planned : int;
  stopped_early : bool;
  resumed : int;  (** trials loaded from the journal, not re-run *)
  wall_s : float;
}

let encode_outcome = function
  | Success -> "S"
  | Failed -> "F"
  | Crashed -> "C"
  | Recovered -> "R"

let decode_outcome = function
  | "S" -> Some Success
  | "F" -> Some Failed
  | "C" -> Some Crashed
  | "R" -> Some Recovered
  | _ -> None

(** Minimum completed trials before early stopping may trigger: a
    Wilson interval over a handful of trials is formally narrow only
    when the rate is extreme, and stopping there would be dishonest. *)
let early_stop_min_trials = 50

(** The journal identity of a campaign.  The historical tag stays
    byte-identical under the default model/policy, so pre-existing
    journals keep resuming; any other configuration gets its own tag
    and cannot silently resume a journal recorded under different
    semantics.  Shared with the campaign server so a server-mode
    journal and a [--jobs 1] journal of the same campaign are
    interchangeable. *)
let campaign_tag (cfg : config) ~(population : int) ~(trials : int) : string =
  let base =
    Printf.sprintf "campaign:v1:seed=%d:population=%d:trials=%d" cfg.seed
      population trials
  in
  let base =
    match (cfg.model, cfg.recovery) with
    | Fault_model.Single_bit, No_recovery -> base
    | m, r ->
        Printf.sprintf "%s:model=%s:recover=%s" base (Fault_model.to_string m)
          (recovery_to_string r)
  in
  let base =
    match cfg.structure with
    | Structure.Reg -> base
    | s -> Printf.sprintf "%s:structure=%s" base (Structure.to_string s)
  in
  match cfg.site_level with
  | Native -> base
  | Reference ->
      Printf.sprintf "%s:sites=%s" base (site_level_to_string cfg.site_level)

(** The deterministic per-trial kernel: trial [i] derives its own RNG
    stream from [(cfg.seed, i)], samples one fault from [t], and runs
    one classified execution.  Extracted from {!run_report} so every
    engine that schedules trials — the in-process executor, the
    campaign server's forked workers — runs {e this exact function},
    which is what makes counts a pure function of the configuration
    regardless of which process computed which index. *)
let trial_fun ?(backend = Backend.default) (prog : Prog.t)
    ~(verify : Machine.result -> bool) ~(clean_instructions : int)
    ?(cfg = default_config) ?(watchdog_s : float option) (t : target) :
    int -> outcome_class =
  let budget = cfg.budget_factor * max 1 clean_instructions in
  (* resolve the runner here, not per trial: under the compiled backend
     this compiles (or fetches) the plan in the submitting domain, so
     worker domains and forked server workers share one plan instead of
     racing on the cache *)
  let run = Backend.runner backend prog in
  fun i ->
    let rng = Rng.derive ~seed:cfg.seed ~index:i in
    let injection = sample_injection ~model:cfg.model rng t in
    let watchdog =
      Option.map (fun s -> Watchdog.create ~seconds:s ()) watchdog_s
    in
    match injection with
    | Vm_fault fault ->
        run_one_with run ~budget ?watchdog ~recovery:cfg.recovery ~verify fault
    | Istore_flip { widx; and_mask; or_mask; xor_mask } ->
        (* re-bake the mutated program and run it fault-free: under the
           compiled backend the mutant re-keys the content-addressed
           plan cache; the corrupted word decodes to a different legal
           instruction or the structured Illegal trap *)
        let enc =
          match t with Istore_struct { enc } -> enc | _ -> assert false
        in
        let fidx, pc = Icodec.locate enc widx in
        let word =
          Machine.apply_masks (Icodec.word enc ~fidx ~pc) ~and_mask ~or_mask
            ~xor_mask
        in
        let mutated = Icodec.mutate prog enc ~fidx ~pc ~word in
        classify_run
          (Backend.runner backend mutated)
          ~budget ?watchdog ~recovery:cfg.recovery ~verify None

let counts_of_outcomes (outcomes : outcome_class Executor.outcome array) :
    counts =
  Array.fold_left
    (fun acc -> function
      | Executor.Done o -> add_outcome acc o
      | Executor.Infra_error _ -> { acc with infra = acc.infra + 1 })
    zero_counts outcomes

(** Run a campaign against one target.  [clean_instructions] is the
    fault-free dynamic instruction count (for the hang budget).

    Every trial [i] samples its fault from [Rng.derive ~seed ~index:i],
    so the outcome sequence is a pure function of the configuration:
    [exec.jobs], scheduling, and kill-then-resume cannot change the
    counts. *)
let run_report (prog : Prog.t) ~(verify : Machine.result -> bool)
    ~(clean_instructions : int) ?(cfg = default_config)
    ?(exec = default_exec) (t : target) : run_report =
  let population = target_population t in
  let trials = if population = 0 then 0 else trials_for cfg t in
  let run_trial =
    trial_fun ~backend:exec.backend prog ~verify ~clean_instructions ~cfg
      ?watchdog_s:exec.watchdog_s t
  in
  let should_stop =
    if not exec.early_stop then None
    else
      Some
        (fun (outcomes : outcome_class Executor.outcome array) n ->
          let c = counts_of_outcomes outcomes in
          n >= early_stop_min_trials
          && c.trials >= early_stop_min_trials
          &&
          let lo, hi =
            Stats.wilson_interval ~successes:c.success ~trials:c.trials
              ~confidence:cfg.confidence
          in
          (hi -. lo) /. 2.0 <= cfg.margin)
  in
  let spec =
    {
      Executor.tag = campaign_tag cfg ~population ~trials;
      total = trials;
      run_trial;
      encode = encode_outcome;
      decode = decode_outcome;
      should_stop;
    }
  in
  let ecfg =
    {
      Executor.jobs = exec.jobs;
      batch = exec.batch;
      journal = exec.journal;
      resume = exec.resume;
      max_retries = exec.max_retries;
      retry_backoff_s = exec.retry_backoff_s;
      retry_jitter = exec.retry_jitter;
      on_progress = exec.on_progress;
      metrics = exec.metrics;
    }
  in
  let r = Executor.run ~cfg:ecfg spec in
  {
    counts = counts_of_outcomes r.Executor.outcomes;
    planned = r.Executor.planned;
    stopped_early = r.Executor.stopped_early;
    resumed = r.Executor.resumed;
    wall_s = r.Executor.wall_s;
  }

let run (prog : Prog.t) ~(verify : Machine.result -> bool)
    ~(clean_instructions : int) ?(cfg = default_config)
    ?(exec = default_exec) (t : target) : counts =
  (run_report prog ~verify ~clean_instructions ~cfg ~exec t).counts

(* --- campaign submission / streaming (the wire API) --------------------- *)

(** A submittable whole-program campaign: everything a remote campaign
    service needs to reconstruct the exact statistical design — the app
    spelling ([CG], [CG@all], [IS@opt:fold+dce]…), the seed, the trial
    cap, the fault model, and the recovery policy.  Deliberately {e not}
    the program itself: the server resolves and bakes the app on its
    side (and caches the result content-addressed), so a submission is
    a few hundred bytes. *)
type spec = {
  sp_app : string;
  sp_seed : int;
  sp_trials : int option;  (** [max_trials]; [None] = full design *)
  sp_model : Fault_model.t;
  sp_recovery : recovery;
  sp_structure : Structure.t;
}

let default_spec =
  {
    sp_app = "IS";
    sp_seed = default_config.seed;
    sp_trials = Some 500;
    sp_model = Fault_model.Single_bit;
    sp_recovery = No_recovery;
    sp_structure = Structure.Reg;
  }

(** The statistical design a submission stands for. *)
let config_of_spec (s : spec) : config =
  {
    default_config with
    seed = s.sp_seed;
    max_trials = s.sp_trials;
    model = s.sp_model;
    recovery = s.sp_recovery;
    structure = s.sp_structure;
  }

(* The structure atom is appended only when non-default, so default
   submissions keep their historical byte encoding; the decoder accepts
   both widths. *)
let spec_to_csexp (s : spec) : Csexp.t =
  Csexp.(
    List
      ([
         Atom "campaign-spec";
         Atom s.sp_app;
         Atom (string_of_int s.sp_seed);
         Atom
           (match s.sp_trials with Some n -> string_of_int n | None -> "full");
         Atom (Fault_model.to_string s.sp_model);
         Atom (recovery_to_string s.sp_recovery);
       ]
      @
      match s.sp_structure with
      | Structure.Reg -> []
      | st -> [ Atom (Structure.to_string st) ]))

let spec_of_csexp (c : Csexp.t) : (spec, string) result =
  match c with
  | Csexp.List
      (Csexp.Atom "campaign-spec"
      :: Csexp.Atom app
      :: Csexp.Atom seed
      :: Csexp.Atom trials
      :: Csexp.Atom model
      :: Csexp.Atom recovery
      :: rest)
    when rest = []
         || match rest with [ Csexp.Atom _ ] -> true | _ -> false -> (
      let structure =
        match rest with
        | [ Csexp.Atom s ] -> Structure.of_string s
        | _ -> Ok Structure.Reg
      in
      match
        ( int_of_string_opt seed,
          (if String.equal trials "full" then Some None
           else Option.map Option.some (int_of_string_opt trials)),
          Fault_model.of_string model,
          recovery_of_string recovery,
          structure )
      with
      | Some sp_seed, Some sp_trials, Ok sp_model, Ok sp_recovery,
        Ok sp_structure ->
          Ok
            {
              sp_app = app;
              sp_seed;
              sp_trials;
              sp_model;
              sp_recovery;
              sp_structure;
            }
      | None, _, _, _, _ -> Error (Printf.sprintf "bad campaign seed %S" seed)
      | _, None, _, _, _ -> Error (Printf.sprintf "bad trial cap %S" trials)
      | _, _, Error e, _, _ -> Error e
      | _, _, _, Error e, _ -> Error e
      | _, _, _, _, Error e -> Error e)
  | _ -> Error "not a campaign-spec record"

(** Counts on the wire, field-ordered and versioned: the streaming
    progress/result records of the campaign service, and the byte
    representation the determinism gate compares — "byte-identical to
    [--jobs 1]" means these encodings are equal as strings. *)
let counts_to_csexp (c : counts) : Csexp.t =
  Csexp.(
    List
      [
        Atom "counts";
        Atom (string_of_int c.success);
        Atom (string_of_int c.failed);
        Atom (string_of_int c.crashed);
        Atom (string_of_int c.recovered);
        Atom (string_of_int c.trials);
        Atom (string_of_int c.infra);
      ])

let counts_of_csexp (c : Csexp.t) : (counts, string) result =
  match c with
  | Csexp.List
      [
        Csexp.Atom "counts";
        Csexp.Atom s;
        Csexp.Atom f;
        Csexp.Atom cr;
        Csexp.Atom r;
        Csexp.Atom t;
        Csexp.Atom i;
      ] -> (
      match
        ( int_of_string_opt s,
          int_of_string_opt f,
          int_of_string_opt cr,
          int_of_string_opt r,
          int_of_string_opt t,
          int_of_string_opt i )
      with
      | Some success, Some failed, Some crashed, Some recovered, Some trials,
        Some infra ->
          Ok { success; failed; crashed; recovered; trials; infra }
      | _ -> Error "counts record has a non-integer field")
  | _ -> Error "not a counts record"
