(** Sharded append-only journals.

    One campaign journal becomes [shards] independent append-only files
    under a directory, each carrying the same campaign header and each
    healing its own torn tail — so a crash mid-append loses at most the
    unsynced tail of the shard being written, never the whole log, and
    shards can be written and compacted independently.

    The shard of a record is chosen by the caller (the campaign server
    routes a trial batch to [batch_index mod shards]), which keeps each
    batch's records contiguous in one file and lets a recovering server
    replay shards in any order: the merged view is order-insensitive
    because records are keyed (trial index) and deduplicated on load. *)

type t = {
  dir : string;
  shards : int;
  writers : Journal.writer option array;
  appended : int array;  (** records appended per shard since open/compact *)
}

let shard_file (dir : string) (i : int) : string =
  Filename.concat dir (Printf.sprintf "shard-%03d.journal" i)

let shard_paths ~(dir : string) ~(shards : int) : string list =
  List.init shards (shard_file dir)

let rec ensure_dir (dir : string) =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** Open a sharded journal for writing, creating the directory and
    truncating any previous shard files. *)
let create ~(dir : string) ~(shards : int) ~(header : Csexp.t) : t =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  ensure_dir dir;
  let writers =
    Array.init shards (fun i ->
        let w = Journal.create (shard_file dir i) in
        Journal.write w header;
        Journal.sync w;
        Some w)
  in
  { dir; shards; writers; appended = Array.make shards 0 }

exception
  Header_mismatch of { shard : string; found : Csexp.t option }
(** A shard's first record is not the expected campaign header: the
    directory belongs to a different campaign; refuse to resume. *)

let () =
  Printexc.register_printer (function
    | Header_mismatch { shard; found } ->
        Some
          (Printf.sprintf
             "Shard.Header_mismatch: %s does not open with the expected \
              campaign header (found %s); refusing to resume"
             shard
             (match found with
             | Some c -> Csexp.to_string c
             | None -> "an empty shard"))
    | _ -> None)

(** Reopen an existing sharded journal for appending: each shard's torn
    tail is dropped at the offset [Journal.load] validated, headers are
    checked against [header], and the surviving non-header records of
    all shards are returned (shard 0 first; within a shard, log order).
    Missing shard files are created fresh.
    @raise Header_mismatch when a non-empty shard belongs to a
    different campaign. *)
let open_resume ~(dir : string) ~(shards : int) ~(header : Csexp.t) :
    t * Csexp.t list =
  if shards <= 0 then invalid_arg "Shard.open_resume: shards must be positive";
  ensure_dir dir;
  (* per-shard record lists, shard order reversed; concatenated once at
     the end — appending each shard's tail to a growing list would be
     quadratic in the total record count *)
  let record_lists = ref [] in
  let writers =
    Array.init shards (fun i ->
        let path = shard_file dir i in
        let recs, valid_end = Journal.load path in
        match recs with
        | [] ->
            let w = Journal.create path in
            Journal.write w header;
            Journal.sync w;
            Some w
        | h :: rest when h = header ->
            record_lists := rest :: !record_lists;
            Some (Journal.open_append ~truncate_at:valid_end path)
        | h :: _ -> raise (Header_mismatch { shard = path; found = Some h }))
  in
  ( { dir; shards; writers; appended = Array.make shards 0 },
    List.concat (List.rev !record_lists) )

let writer (t : t) (shard : int) : Journal.writer =
  match t.writers.(shard mod t.shards) with
  | Some w -> w
  | None -> invalid_arg "Shard.writer: shard closed"

(** Append one record to shard [shard mod shards] (buffered; durable
    after [sync]). *)
let append (t : t) ~(shard : int) (r : Csexp.t) : unit =
  let i = shard mod t.shards in
  Journal.write (writer t i) r;
  t.appended.(i) <- t.appended.(i) + 1

let sync (t : t) ~(shard : int) : unit = Journal.sync (writer t shard)

let sync_all (t : t) : unit =
  Array.iter (function Some w -> Journal.sync w | None -> ()) t.writers

(** Compact one shard in place (see {!Journal.compact}): the shard's
    writer is closed around the rewrite and reopened for appending.
    Returns [(bytes_before, bytes_after)]. *)
let compact (t : t) ~(key : Csexp.t -> string option) ~(shard : int) :
    int * int =
  let i = shard mod t.shards in
  (match t.writers.(i) with
  | Some w -> Journal.close w
  | None -> ());
  t.writers.(i) <- None;
  let sizes = Journal.compact ~key (shard_file t.dir i) in
  t.writers.(i) <- Some (Journal.open_append (shard_file t.dir i));
  t.appended.(i) <- 0;
  sizes

let appended (t : t) ~(shard : int) : int = t.appended.(shard mod t.shards)

let close (t : t) : unit =
  Array.iteri
    (fun i w ->
      match w with
      | Some w ->
          Journal.close w;
          t.writers.(i) <- None
      | None -> ())
    t.writers
