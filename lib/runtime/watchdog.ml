(** Wall-clock watchdog for a single trial.

    The instruction budget catches hangs that retire instructions, but
    a fault can also make a run pathologically slow without exceeding
    the budget (e.g. a loop bound corrupted to a huge-but-finite
    value).  The watchdog supplements the budget with a wall-clock
    deadline: the VM calls [check] from its event sink and the check
    raises {!Timeout} once the deadline passes.  Sampling the clock is
    strided so the common case costs one increment and compare. *)

exception Timeout of float
(** The deadline (in seconds) that was exceeded. *)

type t = {
  deadline : float;       (* absolute, Unix.gettimeofday scale *)
  seconds : float;
  mutable countdown : int;
  stride : int;
}

let create ?(stride = 4096) ~(seconds : float) () : t =
  {
    deadline = Unix.gettimeofday () +. seconds;
    seconds;
    countdown = (if seconds <= 0.0 then 0 else stride);
    stride = max 1 stride;
  }

let expired (w : t) : bool = Unix.gettimeofday () > w.deadline

let check (w : t) : unit =
  if w.countdown <= 0 then begin
    if expired w then raise (Timeout w.seconds);
    w.countdown <- w.stride
  end
  else w.countdown <- w.countdown - 1

(** Refreshable deadlines: the per-worker half of the watchdog.

    A trial watchdog ({!t}) is armed once and only ever trips; a
    campaign server supervising workers needs the complementary shape —
    a deadline that is pushed out every time the worker proves liveness
    (a heartbeat, a result) and is polled, not raised, because the
    supervisor owns the control flow.  [remaining] feeds the server's
    select timeout so a stalled worker is noticed as soon as its
    deadline passes, not at the next unrelated event. *)

type deadline = {
  d_seconds : float;
  mutable d_expires : float;  (* absolute, Unix.gettimeofday scale *)
}

let arm ~(seconds : float) : deadline =
  { d_seconds = seconds; d_expires = Unix.gettimeofday () +. seconds }

let refresh (d : deadline) : unit =
  d.d_expires <- Unix.gettimeofday () +. d.d_seconds

let deadline_expired (d : deadline) : bool = Unix.gettimeofday () > d.d_expires

let remaining (d : deadline) : float =
  Float.max 0.0 (d.d_expires -. Unix.gettimeofday ())
