(** Sharded append-only journals: one campaign log split over
    [shards] independent files, each with the campaign header and its
    own torn-tail healing, written and compacted independently.  The
    caller routes records to shards (e.g. [batch_index mod shards]);
    the merged view on resume is order-insensitive because records are
    keyed and deduplicated by the reader. *)

type t

exception Header_mismatch of { shard : string; found : Csexp.t option }
(** A non-empty shard does not open with the expected campaign header:
    the directory belongs to a different campaign. *)

val shard_paths : dir:string -> shards:int -> string list
(** The shard file paths a [(dir, shards)] layout uses. *)

val create : dir:string -> shards:int -> header:Csexp.t -> t
(** Create/truncate every shard, writing [header] to each. *)

val open_resume : dir:string -> shards:int -> header:Csexp.t -> t * Csexp.t list
(** Reopen for appending: heal each shard's torn tail, validate each
    header, and return the surviving non-header records of all shards
    (shard order, then log order).  Missing shards are created.
    @raise Header_mismatch on a foreign shard. *)

val append : t -> shard:int -> Csexp.t -> unit
(** Buffer one record on shard [shard mod shards]. *)

val sync : t -> shard:int -> unit
(** Flush + fsync one shard. *)

val sync_all : t -> unit

val compact : t -> key:(Csexp.t -> string option) -> shard:int -> int * int
(** Compact one shard in place ({!Journal.compact} semantics); its
    writer is transparently reopened.  Returns (bytes before, after). *)

val appended : t -> shard:int -> int
(** Records appended to the shard since open/last compaction. *)

val close : t -> unit
