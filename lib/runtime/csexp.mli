(** Canonical s-expressions (csexp), the journal's wire format: atoms
    are [<len>:<bytes>], lists are [(...)].  Self-delimiting, so a log
    truncated mid-record decodes up to the last complete record. *)

type t = Atom of string | List of t list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val decode_one : string -> pos:int -> (t * int) option
(** One value starting at [pos] and the position just past it; [None]
    on malformed or truncated input. *)

val decode_prefix : string -> t list * int
(** The longest valid prefix: records plus the byte offset where
    decoding stopped (the full length iff the input is well-formed).
    Newline separators between records are tolerated and skipped. *)

val of_string : string -> t option
(** The whole string as exactly one value. *)
