(** Append-only on-disk journal of csexp records.

    The checkpoint/restart half of the resilience patterns applied to
    our own experiment infrastructure: every completed unit of work is
    appended as one self-delimiting csexp record and fsync'd in
    batches, so a killed process loses at most the unsynced tail and a
    restart resumes from the last complete record.

    Crash tolerance on read: [load] decodes the longest valid prefix
    and reports where it ends; [open_append ~truncate_at] drops a
    torn tail before appending, so a journal that died mid-write heals
    on the next run. *)

type writer = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable closed : bool;
}

let load (path : string) : Csexp.t list * int =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Csexp.decode_prefix s
  end

let open_append ?(truncate_at : int option) (path : string) : writer =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (match truncate_at with
  | Some off -> Unix.ftruncate fd off
  | None -> ());
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { fd; buf = Buffer.create 4096; closed = false }

let create (path : string) : writer =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  { fd; buf = Buffer.create 4096; closed = false }

(** Buffer one record; nothing reaches the disk until [sync]. *)
let write (w : writer) (x : Csexp.t) : unit =
  if w.closed then invalid_arg "Journal.write: closed";
  Csexp.to_buffer w.buf x;
  Buffer.add_char w.buf '\n'

(** Flush the buffered records in one [write] and fsync: records are
    durable in batches, not one syscall per trial. *)
let sync (w : writer) : unit =
  if w.closed then invalid_arg "Journal.sync: closed";
  let s = Buffer.contents w.buf in
  Buffer.clear w.buf;
  if String.length s > 0 then begin
    let n = String.length s in
    let written = ref 0 in
    while !written < n do
      written :=
        !written
        + Unix.write_substring w.fd s !written (n - !written)
    done;
    Unix.fsync w.fd
  end

let close (w : writer) : unit =
  if not w.closed then begin
    sync w;
    w.closed <- true;
    Unix.close w.fd
  end

(** Compact a journal in place: decode the valid prefix (dropping any
    torn tail), deduplicate the records [key] identifies — the
    {e last} value written for a key survives, matching what a reader
    folding the log with replace semantics would see, but it is emitted
    at the key's {e first} position so record order stays stable —
    and atomically replace the file (write temp, fsync, rename).
    Records with no key ([None], e.g. headers) are always kept.
    Returns [(bytes_before, bytes_after)]. *)
let compact ?(key : (Csexp.t -> string option) = fun _ -> None)
    (path : string) : int * int =
  let records, _valid_end = load path in
  let before =
    if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0
  in
  (* last value per key, first position per key *)
  let latest : (string, Csexp.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun r ->
      match key r with
      | Some k -> Hashtbl.replace latest k r
      | None -> ())
    records;
  let emitted : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      let keep =
        match key r with
        | None -> Some r
        | Some k ->
            if Hashtbl.mem emitted k then None
            else begin
              Hashtbl.add emitted k ();
              Some (Hashtbl.find latest k)
            end
      in
      match keep with
      | Some r ->
          Csexp.to_buffer buf r;
          Buffer.add_char buf '\n'
      | None -> ())
    records;
  let tmp = path ^ ".compact.tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let s = Buffer.contents buf in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length s in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd s !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  (before, String.length s)
