(** Append-only on-disk journal of csexp records, fsync'd in batches.
    A record is one csexp value followed by a newline (the newline is
    cosmetic; csexp is self-delimiting).  Reading tolerates a torn
    tail: [load] stops at the last complete record. *)

type writer

val load : string -> Csexp.t list * int
(** All complete records plus the byte offset of the valid prefix's
    end.  A missing file loads as [([], 0)]. *)

val create : string -> writer
(** Truncate/create the file and open it for appending. *)

val open_append : ?truncate_at:int -> string -> writer
(** Open for appending; [truncate_at] first drops a torn tail (pass
    the offset [load] returned). *)

val write : writer -> Csexp.t -> unit
(** Buffer one record (durable only after [sync]). *)

val sync : writer -> unit
(** Write the buffered records and fsync. *)

val close : writer -> unit
(** [sync] then close the descriptor.  Idempotent. *)

val compact : ?key:(Csexp.t -> string option) -> string -> int * int
(** Compact a journal in place: heal the torn tail and deduplicate the
    records [key] identifies (the last value written for a key
    survives, at the key's first position; [None] records — headers —
    are always kept).  Atomic: temp file + fsync + rename.  Returns
    [(bytes_before, bytes_after)]. *)
