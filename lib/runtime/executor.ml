(** Resilient batch executor: the campaign engine.

    Runs [total] independent, deterministic trials (identified by their
    index) and applies the canonical HPC resilience patterns to the
    experiment infrastructure itself:

    {ul
    {- {e parallelism}: trials fan out over a {!Pool} of OCaml 5
       domains; because a trial depends only on its index, results are
       bit-identical for any worker count;}
    {- {e checkpoint/restart}: every completed trial is journaled
       (csexp, fsync'd once per batch) and [resume] skips journaled
       trials, so a killed campaign restarts where it stopped;}
    {- {e isolation + bounded retry}: a trial that raises is retried
       with bounded exponential backoff and then recorded as
       {!Infra_error} — infrastructure faults are reported separately
       and can never abort the campaign or masquerade as experiment
       outcomes;}
    {- {e graceful degradation}: an optional [should_stop] predicate is
       evaluated at deterministic batch boundaries (e.g. a Wilson
       confidence interval reaching the target margin), and the report
       says honestly how much of the plan ran.}}

    Determinism contract: batches are fixed contiguous index ranges
    [k*batch, (k+1)*batch), outcomes are accumulated in index order,
    and [should_stop] only sees completed prefixes — so a run with 1
    worker, N workers, or a kill-and-resume all produce the same
    outcome sequence. *)

type 'a outcome = Done of 'a | Infra_error of string

type progress = {
  completed : int;
  planned : int;
  elapsed_s : float;
  eta_s : float;  (** from this run's own throughput; 0 when unknown *)
}

type config = {
  jobs : int;  (** worker domains; 1 = run inline *)
  batch : int;
      (** journal/fsync/early-stop granularity — fixed boundaries,
          independent of [jobs], to keep runs comparable *)
  journal : string option;
  resume : bool;  (** load the journal and skip completed trials *)
  max_retries : int;  (** retries before a raising trial is Infra_error *)
  retry_backoff_s : float;  (** base of the exponential backoff *)
  retry_jitter : float;
      (** fraction of each backoff step randomized (0 = the historical
          deterministic [base * 2^k]; 0.5 spreads sleeps over
          [0.5x, 1.5x)).  The jitter is a pure function of (trial,
          attempt), so runs stay reproducible, but distinct trials
          de-synchronize — without it, every worker that hit the same
          transient infrastructure fault retries in lockstep and the
          herd thunders again.  Sleeping longer or shorter never
          changes a trial's outcome, so campaign counts are pinned. *)
  on_progress : (progress -> unit) option;
  metrics : Obs.t option;
      (** when set, the engine times its phases (resume, trials,
          journal) and counts trials/retries/infra errors there *)
}

let default_config =
  {
    jobs = 1;
    batch = 64;
    journal = None;
    resume = false;
    max_retries = 2;
    retry_backoff_s = 0.05;
    retry_jitter = 0.5;
    on_progress = None;
    metrics = None;
  }

type 'a spec = {
  tag : string;
      (** campaign identity; a resumed journal must carry the same tag *)
  total : int;
  run_trial : int -> 'a;
      (** deterministic in the index; exceptions are retried and then
          classified as {!Infra_error} *)
  encode : 'a -> string;
  decode : string -> 'a option;
  should_stop : ('a outcome array -> int -> bool) option;
      (** [should_stop outcomes n]: outcomes [0..n-1] are complete;
          return true to stop after this batch *)
}

type 'a report = {
  outcomes : 'a outcome array;  (** the completed prefix, in index order *)
  planned : int;
  completed : int;
  infra_errors : int;
  stopped_early : bool;
  resumed : int;  (** trials taken from the journal, not re-run *)
  wall_s : float;
}

(* --- journal records --------------------------------------------------- *)

let magic = "fliptracker-journal"
let version = "1"

let header_record (s : 'a spec) : Csexp.t =
  Csexp.(List [ Atom magic; Atom version; Atom s.tag; Atom (string_of_int s.total) ])

let trial_record (encode : 'a -> string) (idx : int) (o : 'a outcome) : Csexp.t =
  let open Csexp in
  match o with
  | Done v -> List [ Atom "t"; Atom (string_of_int idx); Atom "ok"; Atom (encode v) ]
  | Infra_error m -> List [ Atom "t"; Atom (string_of_int idx); Atom "err"; Atom m ]

let parse_trial (decode : string -> 'a option) (r : Csexp.t) :
    (int * 'a outcome) option =
  let open Csexp in
  match r with
  | List [ Atom "t"; Atom idx; Atom "ok"; Atom payload ] -> (
      match (int_of_string_opt idx, decode payload) with
      | Some i, Some v -> Some (i, Done v)
      | _, _ -> None)
  | List [ Atom "t"; Atom idx; Atom "err"; Atom m ] ->
      Option.map (fun i -> (i, Infra_error m)) (int_of_string_opt idx)
  | _ -> None

(** Load a resumable journal: validated header + the journaled
    outcomes + the byte offset of the valid prefix (for healing a torn
    tail).  @raise Failure when the journal belongs to a different
    campaign (tag or plan size mismatch) or has no valid header. *)
let load_journal (spec : 'a spec) (path : string) :
    (int, 'a outcome) Hashtbl.t * int =
  let records, valid_end = Journal.load path in
  let seen = Hashtbl.create 256 in
  (match records with
  | [] -> ()
  | Csexp.List [ Csexp.Atom m; Csexp.Atom _; Csexp.Atom tag; Csexp.Atom total ]
    :: rest
    when String.equal m magic ->
      if not (String.equal tag spec.tag) then
        failwith
          (Printf.sprintf
             "journal %s belongs to a different campaign (journal tag %S, \
              expected %S); refusing to resume"
             path tag spec.tag);
      if int_of_string_opt total <> Some spec.total then
        failwith
          (Printf.sprintf
             "journal %s plans %s trials but this campaign plans %d; refusing \
              to resume"
             path total spec.total);
      List.iter
        (fun r ->
          match parse_trial spec.decode r with
          | Some (i, o) when i >= 0 && i < spec.total -> Hashtbl.replace seen i o
          | Some _ | None -> ())
        rest
  | _ ->
      failwith
        (Printf.sprintf "journal %s has no valid header; refusing to resume"
           path));
  (seen, valid_end)

(* --- the engine -------------------------------------------------------- *)

(* splitmix64 finalizer over (trial, attempt) -> uniform in [0, 1):
   deterministic jitter without depending on a shared RNG stream *)
let jitter_unit (idx : int) (attempt : int) : float =
  let z = Int64.of_int (((idx + 1) * 0x9E3779B9) lxor (attempt * 0x85EBCA6B)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

(** The sleep before re-attempt [k] of trial [idx]: exponential base
    with per-(trial, attempt) jitter so synchronized failures don't
    retry in lockstep. *)
let backoff_s (cfg : config) (idx : int) (k : int) : float =
  let step = cfg.retry_backoff_s *. Float.of_int (1 lsl k) in
  let j = Float.max 0.0 (Float.min 1.0 cfg.retry_jitter) in
  step *. (1.0 +. (j *. ((2.0 *. jitter_unit idx k) -. 1.0)))

(** One trial with bounded-exponential-backoff retry.  Exceptions never
    escape: after [max_retries] re-attempts the trial is recorded as
    {!Infra_error} and the campaign goes on. *)
let attempt (cfg : config) (spec : 'a spec) (idx : int) : 'a outcome =
  let rec go k =
    match spec.run_trial idx with
    | v -> Done v
    | exception e ->
        if k >= cfg.max_retries then
          Infra_error (Printf.sprintf "trial %d: %s" idx (Printexc.to_string e))
        else begin
          (match cfg.metrics with
          | Some m -> Obs.count m "executor/retries" 1
          | None -> ());
          if cfg.retry_backoff_s > 0.0 then Unix.sleepf (backoff_s cfg idx k);
          go (k + 1)
        end
  in
  go 0

let run ?(cfg = default_config) (spec : 'a spec) : 'a report =
  if spec.total < 0 then invalid_arg "Executor.run: negative total";
  let obs_phase name f =
    match cfg.metrics with Some m -> Obs.phase m name f | None -> f ()
  in
  let obs_count name n =
    match cfg.metrics with Some m -> Obs.count m name n | None -> ()
  in
  let obs_observe name v =
    match cfg.metrics with Some m -> Obs.observe m name v | None -> ()
  in
  let t0 = Unix.gettimeofday () in
  let batch = max 1 cfg.batch in
  (* checkpoint state: what the journal already knows *)
  let journaled, writer =
    match cfg.journal with
    | None -> (Hashtbl.create 0, None)
    | Some path ->
        if cfg.resume && Sys.file_exists path then begin
          let seen, valid_end =
            obs_phase "executor/resume" (fun () -> load_journal spec path)
          in
          let w = Journal.open_append ~truncate_at:valid_end path in
          (* a tail torn inside the header heals to an empty journal;
             re-write the header so the healed file stays resumable *)
          if valid_end = 0 then begin
            Journal.write w (header_record spec);
            Journal.sync w
          end;
          (seen, Some w)
        end
        else begin
          let w = Journal.create path in
          Journal.write w (header_record spec);
          Journal.sync w;
          (Hashtbl.create 0, Some w)
        end
  in
  let resumed = Hashtbl.length journaled in
  let outcomes : 'a outcome option array = Array.make spec.total None in
  Hashtbl.iter (fun i o -> outcomes.(i) <- Some o) journaled;
  let completed = ref 0 in
  let fresh = ref 0 in
  let stopped = ref false in
  (* fixed contiguous batches: the determinism and resume anchor *)
  while !completed < spec.total && not !stopped do
    let lo = !completed in
    let hi = min spec.total (lo + batch) in
    let pending =
      Array.of_seq
        (Seq.filter
           (fun i -> Option.is_none outcomes.(i))
           (Seq.init (hi - lo) (fun k -> lo + k)))
    in
    let computed =
      obs_phase "executor/trials" (fun () ->
          Pool.map ~jobs:cfg.jobs (attempt cfg spec) pending)
    in
    Array.iteri (fun k i -> outcomes.(i) <- Some computed.(k)) pending;
    fresh := !fresh + Array.length pending;
    obs_count "executor/trials" (Array.length pending);
    obs_observe "executor/batch-pending" (Array.length pending);
    obs_count "executor/infra-errors"
      (Array.fold_left
         (fun a -> function Infra_error _ -> a + 1 | Done _ -> a)
         0 computed);
    (match writer with
    | Some w ->
        obs_phase "executor/journal" (fun () ->
            Array.iteri
              (fun k i ->
                Journal.write w (trial_record spec.encode i computed.(k)))
              pending;
            Journal.sync w)
    | None -> ());
    completed := hi;
    (match cfg.on_progress with
    | Some f ->
        let elapsed_s = Unix.gettimeofday () -. t0 in
        let eta_s =
          if !fresh = 0 then 0.0
          else
            elapsed_s /. Float.of_int !fresh
            *. Float.of_int (spec.total - !completed)
        in
        f { completed = !completed; planned = spec.total; elapsed_s; eta_s }
    | None -> ());
    match spec.should_stop with
    | Some p ->
        (* the predicate sees only the completed prefix, in index order *)
        let prefix =
          Array.init !completed (fun i ->
              match outcomes.(i) with Some o -> o | None -> assert false)
        in
        if p prefix !completed then stopped := true
    | None -> ()
  done;
  Option.iter Journal.close writer;
  let final =
    Array.init !completed (fun i ->
        match outcomes.(i) with Some o -> o | None -> assert false)
  in
  let infra_errors =
    Array.fold_left
      (fun a -> function Infra_error _ -> a + 1 | Done _ -> a)
      0 final
  in
  {
    outcomes = final;
    planned = spec.total;
    completed = !completed;
    infra_errors;
    stopped_early = !stopped;
    resumed;
    wall_s = Unix.gettimeofday () -. t0;
  }
