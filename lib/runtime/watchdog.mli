(** Wall-clock watchdog supplementing the VM's instruction budget for
    hang detection.  Wire [check] into the VM's event sink; it raises
    {!Timeout} once the deadline passes (clock sampled every [stride]
    calls, so the common case is an increment and a compare). *)

exception Timeout of float
(** Carries the exceeded deadline in seconds. *)

type t

val create : ?stride:int -> seconds:float -> unit -> t
val expired : t -> bool

val check : t -> unit
(** @raise Timeout once the wall-clock deadline has passed. *)

(** Refreshable polled deadlines, for supervising workers: armed with a
    period, pushed out on every proof of liveness, and polled by the
    supervisor (never raises). *)
type deadline

val arm : seconds:float -> deadline

val refresh : deadline -> unit
(** Push the deadline out by its full period again. *)

val deadline_expired : deadline -> bool

val remaining : deadline -> float
(** Seconds until expiry, clamped at zero (a select timeout). *)
