(** Resilient batch executor for campaigns of independent, deterministic
    trials: domain-pool parallelism, an append-only csexp journal with
    resume, bounded retry with exponential backoff (infrastructure
    failures become {!Infra_error}, never aborts), and early stopping
    evaluated at deterministic batch boundaries.

    Determinism contract: a trial depends only on its index, batches
    are fixed contiguous index ranges, and outcomes accumulate in index
    order — so 1 worker, N workers, and kill-then-resume all yield the
    same outcome sequence. *)

type 'a outcome =
  | Done of 'a  (** the trial ran and was classified by the experiment *)
  | Infra_error of string
      (** the trial kept raising after bounded retries; reported
          separately so infrastructure faults cannot masquerade as
          experiment outcomes *)

type progress = {
  completed : int;
  planned : int;
  elapsed_s : float;
  eta_s : float;  (** from this run's own throughput; 0 when unknown *)
}

type config = {
  jobs : int;  (** worker domains; 1 = run inline *)
  batch : int;  (** journal/fsync/early-stop granularity *)
  journal : string option;
  resume : bool;  (** load the journal and skip completed trials *)
  max_retries : int;
  retry_backoff_s : float;  (** base of the exponential backoff *)
  retry_jitter : float;
      (** fraction of each backoff step randomized, deterministic per
          (trial, attempt); 0 restores the lockstep [base * 2^k].
          Timing only — outcomes and counts are unaffected. *)
  on_progress : (progress -> unit) option;
  metrics : Obs.t option;
      (** when set, the engine records its phases ([executor/resume],
          [executor/trials], [executor/journal]), trial/retry/infra
          counters, and a batch-size histogram there *)
}

val default_config : config
(** jobs 1, batch 64, no journal, 2 retries, 50 ms backoff base with
    0.5 jitter. *)

val backoff_s : config -> int -> int -> float
(** [backoff_s cfg idx k]: the jittered exponential sleep before
    re-attempt [k] of trial [idx] — exposed so other schedulers (the
    campaign server's lease re-assignment) share the same policy. *)

type 'a spec = {
  tag : string;
      (** campaign identity; a resumed journal must carry the same tag *)
  total : int;
  run_trial : int -> 'a;
      (** deterministic in the index; exceptions are retried and then
          classified as {!Infra_error} *)
  encode : 'a -> string;
  decode : string -> 'a option;
  should_stop : ('a outcome array -> int -> bool) option;
      (** evaluated at batch boundaries on the completed prefix *)
}

type 'a report = {
  outcomes : 'a outcome array;  (** the completed prefix, in index order *)
  planned : int;
  completed : int;
  infra_errors : int;
  stopped_early : bool;
  resumed : int;  (** trials taken from the journal, not re-run *)
  wall_s : float;
}

val run : ?cfg:config -> 'a spec -> 'a report
(** @raise Failure when resuming against a journal whose tag or plan
    size does not match [spec] (a different campaign's journal). *)

(** {2 Journal record format}

    Exposed so other engines over the same trial model — the campaign
    server's sharded journals, [ft_dev journal] — read and write
    records interchangeable with this executor's, which is what lets a
    server-mode campaign resume a single-process journal and vice
    versa. *)

val header_record : 'a spec -> Csexp.t
(** [(magic version tag total)] — the first record of every journal. *)

val trial_record : ('a -> string) -> int -> 'a outcome -> Csexp.t
(** [(t idx ok payload)] or [(t idx err message)]. *)

val parse_trial : (string -> 'a option) -> Csexp.t -> (int * 'a outcome) option
(** Inverse of {!trial_record}; [None] on any other record shape. *)

val attempt : config -> 'a spec -> int -> 'a outcome
(** One trial under the bounded-jittered-retry policy; exceptions never
    escape (they classify as {!Infra_error}).  The unit of work a
    campaign server's worker runs per leased index. *)
