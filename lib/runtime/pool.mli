(** Apply [f] to every array element on [jobs] OCaml 5 domains (atomic
    work-stealing counter; results in input order).  [jobs <= 1] runs
    inline.  If [f] raised on some element, the first such exception is
    re-raised in the caller after all domains finish. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
