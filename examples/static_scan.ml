(* Static scan: lint a registered benchmark with the IR verifier, then
   rank its code regions by static vulnerability — exposure (mean live
   registers and memory words per instruction) discounted by the
   density of protective pattern sites.  No program execution at all:
   the static counterpart of resilience_scan.

   Run with: dune exec examples/static_scan.exe -- [APP]
   e.g.      dune exec examples/static_scan.exe -- MG *)

let () =
  let app_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "CG" in
  let app = Registry.find app_name in
  let prog = App.program app in
  Printf.printf "static scan of %s (%s)\n\n" app.App.name app.App.description;

  (* 1. verifier: a registered benchmark must lint clean *)
  let ds = Verify.verify prog in
  Fmt.pr "lint: @[<v>%a@]@.@." Verify.pp_report ds;

  (* 2. per-function analysis summary *)
  Printf.printf "%-10s %6s %7s %10s %10s\n" "function" "instrs" "blocks"
    "live regs" "live words";
  Array.iter
    (fun (f : Prog.func) ->
      let cfg = Cfg.build f in
      let lv = Liveness.compute ~cfg f in
      let rd = Reaching.compute f in
      let ml = Liveness.compute_mem rd f in
      Printf.printf "%-10s %6d %7d %10.2f %10.2f\n" f.Prog.fname
        (Array.length f.Prog.code) (Cfg.n_blocks cfg) (Liveness.avg_live lv)
        (Liveness.avg_words_live ml))
    prog.Prog.funcs;

  (* 3. vulnerability ranking, seeded with the pattern detector's
     repeated-addition and truncating-print sites *)
  print_newline ();
  Printf.printf "region vulnerability ranking (most vulnerable first):\n";
  Fmt.pr "@[<v>%a@]@." Vuln.pp_ranking (Static_detect.static_rank prog)
