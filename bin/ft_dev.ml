(* Scratch driver kept for interactive exploration during development;
   the real entry points are bin/fliptracker_cli.exe, bench/main.exe
   and the examples.  With no arguments, prints a pipeline sanity line.

   [ft_dev lint-all] runs the static verifier and the vulnerability
   ranking over the whole registry (the ten study programs plus the
   hardened CG variants) AND over the auto-hardened all-passes variant
   of each of the ten programs, and exits nonzero if any program has a
   lint error — the static-analysis counterpart of the sanity line and
   the CI gate on the hardening pipeline's output IR.
   [ft_dev sites] prints per-app static pattern-site counts and
   [ft_dev radd APP] the repeated-addition sites of one app.
   [ft_dev trace-roundtrip [APP]] saves APP's trace (default IS) in
   both encodings, reads both back, and exits nonzero unless each
   round-trip is event-for-event exact. *)

let dedup_apps (apps : App.t list) : App.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (a : App.t) ->
      if Hashtbl.mem seen a.App.name then false
      else begin
        Hashtbl.add seen a.App.name ();
        true
      end)
    apps

let lint_all () =
  let apps = dedup_apps (Registry.all @ Registry.cg_variants) in
  let failed = ref 0 in
  (* registered programs first, then the hardening pipeline's output for
     each of the ten study programs (labelled NAME@all) — the transform
     is applied directly to the compiled IR, no re-bake needed *)
  let programs =
    List.map (fun (a : App.t) -> (a.App.name, App.program a)) apps
    @ List.map
        (fun (a : App.t) ->
          (a.App.name ^ "@all", Harden.transform Passes.all (App.program a)))
        Registry.all
    @ List.map
        (fun (a : App.t) ->
          (a.App.name ^ "@opt", Opt.transform Opt.all (App.program a)))
        Registry.all
  in
  List.iter
    (fun (name, p) ->
      let ds = Verify.verify p in
      let errs = List.length (Verify.errors ds) in
      let warns = List.length (Verify.warnings ds) in
      if errs > 0 then incr failed;
      Printf.printf "%-12s %d errors, %d warnings\n" name errs warns;
      List.iter
        (fun d -> Fmt.pr "    %a@." Verify.pp_diag d)
        (Verify.errors ds);
      let ranking = Vuln.rank p in
      List.iteri
        (fun i s ->
          if i < 3 then
            Printf.printf "    #%d %-12s score %7.3f\n" (i + 1)
              s.Vuln.rname s.Vuln.score)
        ranking)
    programs;
  if !failed > 0 then begin
    Printf.printf "lint-all: %d program(s) with errors\n" !failed;
    exit 1
  end
  else Printf.printf "lint-all: all %d programs clean\n" (List.length programs)

let sanity () =
  let app = Registry.find "IS" in
  let r = App.reference app in
  Printf.printf
    "fliptracker dev: %s runs %d instructions, verified=%b; see bin/fliptracker_cli.exe --help\n"
    app.App.name r.Machine.instructions
    (App.verified r.Machine.output)

let sites () =
  List.iter
    (fun (a : App.t) ->
      let r = Static_detect.analyze (App.program a) in
      Printf.printf "%-8s cond %3d shift %2d trunc %2d store %3d radd %2d\n"
        a.App.name
        (List.length r.Static_detect.conditionals)
        (List.length r.Static_detect.shifts)
        (List.length r.Static_detect.truncations)
        (List.length r.Static_detect.overwrites)
        (List.length r.Static_detect.repeated_adds))
    Registry.all

let trace_roundtrip name =
  let app = Registry.find name in
  let _, trace = App.trace app in
  let n = Trace.length trace in
  let failed = ref false in
  let sizes =
    List.map
      (fun (label, fmt) ->
        let path = Filename.temp_file "ft_rt" ".trace" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Trace_io.save ~format:fmt path trace;
            let size = (Unix.stat path).Unix.st_size in
            let back = Trace_io.load path in
            let ok = ref (Trace.length back = n) in
            if !ok then
              Trace.iteri
                (fun i e -> if compare e (Trace.get back i) <> 0 then ok := false)
                trace;
            Printf.printf "%-8s %-6s %10d bytes  roundtrip %s\n" app.App.name
              label size
              (if !ok then "OK" else "MISMATCH");
            if not !ok then failed := true;
            size))
      [ ("text", Trace_io.Text); ("binary", Trace_io.Binary) ]
  in
  (match sizes with
  | [ text; bin ] when bin > 0 ->
      Printf.printf "%-8s ratio  %10.2fx (%d events)\n" app.App.name
        (float_of_int text /. float_of_int bin)
        n
  | _ -> ());
  if !failed then begin
    print_endline "trace-roundtrip: FAILED";
    exit 1
  end
  else print_endline "trace-roundtrip: OK"

let opt_report name =
  let app = Registry.find name in
  let base = App.program app in
  let prog, reports, map = Opt.optimize Opt.all base in
  Opt.check_identity
    ~passes:(List.map (fun (p : Opt.pass) -> p.Opt.name) Opt.all)
    ~base ~opt:prog;
  Fmt.pr "%a" Opt.pp_reports reports;
  let rb = Machine.run_plain base and ro = Machine.run_plain prog in
  Printf.printf
    "%s: static %d -> %d instructions, dynamic %d -> %d (%.2fx), %d pcs \
     deleted, identity OK\n"
    app.App.name
    (Opt.static_instruction_count base)
    (Opt.static_instruction_count prog)
    rb.Machine.instructions ro.Machine.instructions
    (float_of_int rb.Machine.instructions
    /. float_of_int (max 1 ro.Machine.instructions))
    (Sitemap.deleted map);
  let _, t = Machine.run_traced prog in
  let h = Hashtbl.create 16 in
  Trace.iter
    (fun e ->
      let k =
        match e.Trace.op with
        | Trace.OConst -> "const"
        | Trace.OBin _ -> "bin"
        | Trace.OUn _ -> "un"
        | Trace.OLoad -> "load"
        | Trace.OStore -> "store"
        | Trace.OJmp -> "jmp"
        | Trace.OBr _ -> "br"
        | Trace.OCall -> "call"
        | Trace.ORet -> "ret"
        | Trace.OIntr _ -> "intr"
        | Trace.OMark _ -> "mark"
      in
      Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
    t;
  Hashtbl.iter (fun k v -> Printf.printf "  %-6s %d\n" k v) h

let trial_cost name =
  (* where campaign wall time goes: total instructions interpreted across
     the same 240-trial design the campaign-scale bench runs *)
  let app =
    match String.index_opt name '@' with
    | None -> Registry.find name
    | Some i -> Opt.app_variant (Registry.find (String.sub name 0 i))
  in
  let clean, trace = App.trace app in
  let prog = App.program app in
  let target = Campaign.whole_program_target prog trace in
  let budget = 20 * clean.Machine.instructions in
  let total = ref 0 and hangs = ref 0 and traps = ref 0 in
  for i = 0 to 239 do
    let rng = Rng.derive ~seed:42 ~index:i in
    let fault = Campaign.sample_fault rng target in
    let r = Machine.run prog { Machine.default_config with budget; fault = Some fault } in
    total := !total + r.Machine.instructions;
    match r.Machine.outcome with
    | Machine.Budget_exceeded -> incr hangs
    | Machine.Trapped _ -> incr traps
    | Machine.Finished -> ()
  done;
  Printf.printf
    "%s: clean %d instr; 240 trials: %d total instr (avg %d), %d hangs, %d \
     traps\n"
    app.App.name clean.Machine.instructions !total (!total / 240) !hangs !traps

let profile name =
  (* dynamic instruction counts per pc of the optimized program, hottest
     first — where the remaining interpreter time goes *)
  let app = Registry.find name in
  let prog = Opt.transform Opt.all (App.program app) in
  let _, t = Machine.run_traced prog in
  let counts = Hashtbl.create 64 in
  Trace.iter
    (fun e ->
      let k = (e.Trace.fidx, e.Trace.pc) in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    t;
  let l = Hashtbl.fold (fun k v acc -> (v, k) :: acc) counts [] in
  let l = List.sort (fun a b -> compare b a) l in
  List.iteri
    (fun i (v, (fidx, pc)) ->
      if i < 48 then begin
        let f = prog.Prog.funcs.(fidx) in
        Printf.printf "%8d  %s pc %4d line %4d  %s\n" v f.Prog.fname pc
          f.Prog.lines.(pc)
          (Fmt.str "%a" Instr.pp f.Prog.code.(pc))
      end)
    l

(* --- journal inspect / verify / compact ---------------------------------- *)

let journal_files (path : string) : string list =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".journal")
    |> List.sort compare
    |> List.map (Filename.concat path)
  else [ path ]

let trial_key (r : Csexp.t) : string option =
  match r with
  | Csexp.List (Csexp.Atom "t" :: Csexp.Atom idx :: _) -> Some idx
  | _ -> None

(* one journal file's shape: header, record tallies, torn tail *)
let inspect_one (path : string) : bool =
  let records, valid_end = Journal.load path in
  let size = (Unix.stat path).Unix.st_size in
  let torn = size - valid_end in
  Printf.printf "%s\n" path;
  (match records with
  | Csexp.List
      [ Csexp.Atom magic; Csexp.Atom version; Csexp.Atom tag; Csexp.Atom total ]
    :: rest
    when magic = "fliptracker-journal" ->
      Printf.printf "  header: v%s tag %s, %s trials planned\n" version tag
        total;
      let ok = ref 0 and infra = Hashtbl.create 4 and other = ref 0 in
      let seen = Hashtbl.create 256 and dups = ref 0 in
      List.iter
        (fun r ->
          match r with
          | Csexp.List
              (Csexp.Atom "t" :: Csexp.Atom idx :: Csexp.Atom verdict :: _) ->
              if Hashtbl.mem seen idx then incr dups
              else Hashtbl.add seen idx ();
              if verdict = "ok" then incr ok
              else (
                let k =
                  match r with
                  | Csexp.List [ _; _; _; Csexp.Atom m ] ->
                      Infra.kind_of_message m
                  | _ -> "unknown"
                in
                Hashtbl.replace infra k
                  (1 + Option.value ~default:0 (Hashtbl.find_opt infra k)))
          | _ -> incr other)
        rest;
      Printf.printf "  records: %d trials (%d ok" (Hashtbl.length seen) !ok;
      Hashtbl.iter (fun k v -> Printf.printf ", %d infra/%s" v k) infra;
      Printf.printf ")%s%s\n"
        (if !dups > 0 then Printf.sprintf ", %d superseded duplicates" !dups
         else "")
        (if !other > 0 then Printf.sprintf ", %d foreign records" !other
         else "")
  | [] -> Printf.printf "  empty journal\n"
  | _ -> Printf.printf "  NO VALID HEADER (not a campaign journal?)\n");
  Printf.printf "  valid prefix: %d of %d bytes%s\n" valid_end size
    (if torn > 0 then
       Printf.sprintf " — TORN TAIL (%d bytes would be healed)" torn
     else "");
  torn = 0 && records <> []

let journal_cmd (action : string) (path : string) =
  let files = journal_files path in
  if files = [] then begin
    Printf.eprintf "journal: no .journal files under %s\n" path;
    exit 2
  end;
  match action with
  | "inspect" -> ignore (List.map inspect_one files)
  | "verify" ->
      let healthy = List.for_all inspect_one files in
      if healthy then print_endline "journal: OK"
      else begin
        print_endline "journal: UNHEALTHY (torn tail or missing header)";
        exit 1
      end
  | "compact" ->
      List.iter
        (fun f ->
          let before, after = Journal.compact ~key:trial_key f in
          Printf.printf "%s: %d -> %d bytes (%.0f%%)\n" f before after
            (100.0 *. float_of_int after /. float_of_int (max 1 before)))
        files
  | other ->
      Printf.eprintf
        "journal: unknown action %s (expected inspect|verify|compact)\n" other;
      exit 2

(* --- chaos-campaign: the worker-failure determinism gate ------------------ *)

(* Run the same campaign twice — in-process with jobs 1, then on the
   multi-process server while SIGKILLing workers mid-flight — and fail
   unless the counts are byte-identical (csexp encoding compared as
   strings, infra and recovery fields included). *)
let chaos_campaign (name : string) ~(workers : int) ~(kills : int list)
    ~(trials : int) =
  match Server.plan_of_app name with
  | Error e ->
      Printf.eprintf "chaos-campaign: %s\n" e;
      exit 2
  | Ok plan ->
      let ccfg =
        { Campaign.default_config with Campaign.max_trials = Some trials }
      in
      let spec = Server.campaign_spec plan ccfg in
      let kills =
        if kills <> [] then kills
        else [ spec.Executor.total / 4; spec.Executor.total / 2 ]
      in
      let reference =
        Executor.run ~cfg:{ Executor.default_config with Executor.jobs = 1 }
          spec
      in
      let ref_counts = Campaign.counts_of_outcomes reference.Executor.outcomes in
      let obs = Obs.create () in
      let cfg =
        {
          Server.default_config with
          Server.workers;
          chaos_kills = kills;
          heartbeat_s = 10.0;
          metrics = Some obs;
        }
      in
      let counts, report = Server.run_campaign ~cfg plan ccfg in
      let enc c = Csexp.to_string (Campaign.counts_to_csexp c) in
      Printf.printf "reference (--jobs 1): %s\n" (enc ref_counts);
      Printf.printf "server (%d workers, kills at %s): %s\n" workers
        (String.concat "," (List.map string_of_int kills))
        (enc counts);
      List.iter
        (fun (k, v) -> Printf.printf "  %-28s %d\n" k v)
        (Obs.counters obs);
      let killed =
        Option.value ~default:0 (Obs.counter_value obs "server/chaos-kills")
      in
      if killed = 0 then begin
        print_endline "chaos-campaign: FAILED (no worker was killed)";
        exit 1
      end;
      if report.Executor.completed <> reference.Executor.completed then begin
        Printf.printf "chaos-campaign: FAILED (completed %d vs %d)\n"
          report.Executor.completed reference.Executor.completed;
        exit 1
      end;
      if String.equal (enc counts) (enc ref_counts) then
        print_endline "chaos-campaign: OK (counts byte-identical)"
      else begin
        print_endline "chaos-campaign: FAILED (counts diverge)";
        exit 1
      end

(* Multi-tenant mode of the same gate ([--tenants K], [--tcp N]):
   K campaigns over one fair-share scheduler and a mixed pool of
   forked and remote-TCP workers, with chaos kills landing on whoever
   delivered last.  Tenants 0 and 1 submit byte-identical specs (same
   tag — the journal-directory-collision regression: their ids and
   journal directories must still be distinct); the rest shrink the
   trial design.  Every tenant's counts must be byte-identical to its
   own in-process [--jobs 1] run. *)
let chaos_multi (name : string) ~(workers : int) ~(tcp : int)
    ~(tenants : int) ~(kills : int list) ~(trials : int) =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let tmp = Filename.get_temp_dir_name () in
  let pid = Unix.getpid () in
  let cache_dir = Filename.concat tmp (Printf.sprintf "ft-chaos-cache-%d" pid) in
  let journal_root =
    Filename.concat tmp (Printf.sprintf "ft-chaos-journals-%d" pid)
  in
  let spec_of i =
    let t =
      if i <= 1 then trials else max 16 (trials - (trials / 4 * (i - 1)))
    in
    {
      Campaign.default_spec with
      Campaign.sp_app = name;
      sp_trials = Some t;
    }
  in
  (* one tenant record: typed outcome array + the erased accept hook *)
  let tenant i =
    let spec = spec_of i in
    match Plan.spec_of_submission ~cache_dir spec with
    | Error e ->
        Printf.eprintf "chaos-campaign: tenant %d: %s\n" i e;
        exit 2
    | Ok ex_spec ->
        let id =
          Printf.sprintf "c%04d-%s" i
            (String.sub (Cache.key ex_spec.Executor.tag) 0 10)
        in
        let outcomes = Array.make ex_spec.Executor.total None in
        let accept j r =
          match Executor.parse_trial ex_spec.Executor.decode r with
          | Some (k, o) when k = j ->
              outcomes.(j) <- Some o;
              true
          | Some _ | None -> false
        in
        let should_stop =
          Option.map
            (fun p boundary ->
              let pre =
                Array.init boundary (fun j ->
                    match outcomes.(j) with Some o -> o | None -> assert false)
              in
              p pre boundary)
            ex_spec.Executor.should_stop
        in
        let reference =
          Executor.run
            ~cfg:{ Executor.default_config with Executor.jobs = 1 }
            ex_spec
        in
        let job =
          {
            Sched.jb_id = id;
            jb_app = name;
            jb_total = ex_spec.Executor.total;
            jb_header = Executor.header_record ex_spec;
            jb_journal = Some (Filename.concat journal_root id);
            jb_resume = false;
            jb_spec = Some spec;
            jb_accept = accept;
            jb_should_stop = should_stop;
          }
        in
        (id, job, outcomes, reference)
  in
  let rows = List.init tenants tenant in
  let total_trials =
    List.fold_left (fun a (_, j, _, _) -> a + j.Sched.jb_total) 0 rows
  in
  let kills =
    if kills <> [] then kills else [ total_trials / 4; total_trials / 2 ]
  in
  let obs = Obs.create () in
  let finished : (string, Sched.event) Hashtbl.t = Hashtbl.create 8 in
  let on_event id = function
    | Sched.Progress _ -> ()
    | e -> Hashtbl.replace finished id e
  in
  (* mixed pool: a TCP listener the remote workers dial into, plus the
     forked workers the engine keeps at strength *)
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 8;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  let spawn ~close_fds =
    Worker.spawn
      ~close_fds:(lfd :: close_fds)
      ~load:(Worker.plan_loader ~cache_dir)
      ~retry:Executor.default_config ()
  in
  let cfg =
    {
      Sched.default_config with
      Sched.workers;
      chaos_kills = kills;
      heartbeat_s = 10.0;
      max_active = max 2 (tenants - 1);
      metrics = Some obs;
    }
  in
  let eng = Sched.create ~cfg ~spawn ~on_event () in
  let remote_pids =
    List.init tcp (fun _ -> Worker.spawn_remote ~cache_dir ~addr ())
  in
  List.iter
    (fun _ ->
      let fd, _ = Unix.accept lfd in
      Sched.attach_remote eng (Wire.of_fd fd))
    remote_pids;
  List.iter
    (fun (_, job, _, _) ->
      match Sched.submit eng job with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "chaos-campaign: submit: %s\n" e;
          exit 2)
    rows;
  (try Sched.drain eng
   with e ->
     Sched.abort eng;
     raise e);
  Sched.shutdown_workers eng;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (* remote children exit when their connection closes; reap bounded *)
  List.iter
    (fun rpid ->
      let reaped = ref false in
      let n = ref 0 in
      while (not !reaped) && !n < 100 do
        incr n;
        match Unix.waitpid [ Unix.WNOHANG ] rpid with
        | 0, _ -> Unix.sleepf 0.02
        | _ -> reaped := true
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> reaped := true
      done;
      if not !reaped then begin
        (try Unix.kill rpid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] rpid) with Unix.Unix_error _ -> ()
      end)
    remote_pids;
  Printf.printf
    "chaos-multi: %d tenants (%d trials total), %d forked + %d TCP workers, \
     kills at %s\n"
    tenants total_trials workers tcp
    (String.concat "," (List.map string_of_int kills));
  List.iter
    (fun (s : Sched.tenant_stats) ->
      Printf.printf "  %-16s %-8s %4d/%-4d leases %-3d stolen %d\n" s.Sched.ts_id
        s.Sched.ts_state s.Sched.ts_completed s.Sched.ts_planned
        s.Sched.ts_leases s.Sched.ts_steals)
    (Sched.stats eng);
  List.iter (fun (k, v) -> Printf.printf "  %-28s %d\n" k v) (Obs.counters obs);
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> incr failures; print_endline m) fmt in
  let killed =
    Option.value ~default:0 (Obs.counter_value obs "server/chaos-kills")
  in
  if killed = 0 then fail "chaos-multi: FAILED (no worker was killed)";
  let enc c = Csexp.to_string (Campaign.counts_to_csexp c) in
  List.iter
    (fun (id, _, outcomes, (reference : _ Executor.report)) ->
      match Hashtbl.find_opt finished id with
      | Some (Sched.Finished { completed; _ }) ->
          if completed <> reference.Executor.completed then
            fail "chaos-multi: %s FAILED (completed %d vs %d)" id completed
              reference.Executor.completed
          else begin
            let final =
              Array.init completed (fun j ->
                  match outcomes.(j) with Some o -> o | None -> assert false)
            in
            let counts = Campaign.counts_of_outcomes final in
            let ref_counts =
              Campaign.counts_of_outcomes reference.Executor.outcomes
            in
            if not (String.equal (enc counts) (enc ref_counts)) then
              fail "chaos-multi: %s FAILED (counts diverge)\n  server    %s\n  reference %s"
                id (enc counts) (enc ref_counts)
          end;
          if not (Sys.file_exists (Filename.concat journal_root id)) then
            fail "chaos-multi: %s FAILED (journal directory missing)" id
      | Some (Sched.Poisoned { batch; attempts; cause }) ->
          fail "chaos-multi: %s FAILED (%s)" id
            (Infra.poison_message ~batch ~attempts cause)
      | Some (Sched.Failed { reason }) ->
          fail "chaos-multi: %s FAILED (admission: %s)" id reason
      | Some (Sched.Progress _) | None ->
          fail "chaos-multi: %s FAILED (no terminal event)" id)
    rows;
  (* the collision regression: identical specs, distinct directories *)
  (match rows with
  | (id0, _, _, _) :: (id1, _, _, _) :: _ when tenants >= 2 ->
      if String.equal id0 id1 then
        fail "chaos-multi: FAILED (duplicate specs share a campaign id)"
  | _ -> ());
  if !failures = 0 then
    print_endline "chaos-multi: OK (every tenant byte-identical to --jobs 1)"
  else begin
    Printf.printf "chaos-multi: %d check(s) FAILED\n" !failures;
    exit 1
  end

(* [ft_dev seq-parity [APP...]] — the traced/untraced seq-contract
   gate.  Fault sites are harvested from traced runs and injected into
   untraced campaign runs, keyed by dynamic sequence number; if tracing
   perturbs the seq stream (the historical bug: the call-return
   attribution event consumed a seq only when a trace was attached),
   harvested sites silently land on the wrong instruction.  For each
   app this checks, end to end:
   - the traced and untraced fault-free instruction counts agree;
   - no harvested whole-program site lies beyond the untraced stream;
   - injecting at the call-return attribution seqs (the exact seqs the
     bug displaced) gives identical results traced and untraced.
   Defaults to kmeans and kmeans@opt — the registry app with
   value-returning calls, which is where the bug class manifests. *)
let seq_parity (names : string list) =
  let same_result (a : Machine.result) (b : Machine.result) =
    a.Machine.outcome = b.Machine.outcome
    && String.equal a.Machine.output b.Machine.output
    && a.Machine.instructions = b.Machine.instructions
    && a.Machine.iterations = b.Machine.iterations
    && a.Machine.mem = b.Machine.mem
  in
  let failed = ref 0 in
  let check label ok detail =
    if not ok then begin
      incr failed;
      Printf.printf "seq-parity: %-14s FAILED (%s)\n" label detail
    end
  in
  List.iter
    (fun name ->
      let app =
        match Fliptracker.resolve_app name with
        | Ok a -> a
        | Error msg ->
            Printf.eprintf "seq-parity: %s\n" msg;
            exit 2
      in
      let prog = App.program app in
      let iter_mark = App.iter_mark app in
      let rt, trace = App.trace app in
      let ru =
        Machine.run prog { Machine.default_config with iter_mark }
      in
      check name
        (rt.Machine.instructions = ru.Machine.instructions)
        (Printf.sprintf "traced ran %d instructions, untraced %d"
           rt.Machine.instructions ru.Machine.instructions);
      let target = Campaign.whole_program_target prog trace in
      (match
         Campaign.unreachable_sites target
           ~instructions:ru.Machine.instructions
       with
      | [] -> ()
      | seqs ->
          check name false
            (Printf.sprintf "%d phantom sites, first seq %d"
               (List.length seqs) (List.hd seqs)));
      (* fault parity at the attribution seqs (every ORet write), or at
         a few sampled write seqs for apps without value-returning
         calls so the gate still exercises injection end to end *)
      let ret_seqs = ref [] in
      Trace.iter
        (fun (e : Trace.event) ->
          match e.Trace.op with
          | Trace.ORet when Array.length e.Trace.writes > 0 ->
              ret_seqs := e.Trace.seq :: !ret_seqs
          | _ -> ())
        trace;
      let probes =
        match List.sort_uniq compare !ret_seqs with
        | [] ->
            let n = ru.Machine.instructions in
            List.sort_uniq compare [ 0; n / 3; n / 2; (2 * n) / 3; n - 1 ]
        | seqs ->
            (* cap the probe count: parity at any displaced seq fails *)
            List.filteri (fun i _ -> i < 8) seqs
      in
      let budget = 20 * max 1 ru.Machine.instructions in
      List.iter
        (fun seq ->
          let fault = Machine.Flip_write { seq; bit = 3 } in
          let ft, _ = App.trace_with_fault app fault ~budget in
          let fu =
            Machine.run prog
              {
                Machine.default_config with
                iter_mark;
                fault = Some fault;
                budget;
              }
          in
          check name (same_result ft fu)
            (Printf.sprintf "traced and untraced disagree under flip at seq %d"
               seq))
        probes;
      Printf.printf "seq-parity: %-14s %s (%d instructions, %d probes)\n" name
        (if !failed = 0 then "OK" else "checked")
        ru.Machine.instructions (List.length probes))
    names;
  if !failed > 0 then begin
    Printf.printf "seq-parity: %d check(s) FAILED\n" !failed;
    exit 1
  end

let () =
  match Array.to_list Sys.argv with
  | _ :: "lint-all" :: _ -> lint_all ()
  | _ :: "profile" :: rest ->
      profile (match rest with name :: _ -> name | [] -> "IS")
  | _ :: "opt" :: rest ->
      opt_report (match rest with name :: _ -> name | [] -> "IS")
  | _ :: "trial-cost" :: rest ->
      trial_cost (match rest with name :: _ -> name | [] -> "IS")
  | _ :: "opt-dump" :: rest ->
      let name = match rest with n :: _ -> n | [] -> "IS" in
      let app = Registry.find name in
      let prog = Opt.transform Opt.all (App.program app) in
      Fmt.pr "%a@." Prog.pp prog
  | _ :: "trace-roundtrip" :: rest ->
      trace_roundtrip (match rest with name :: _ -> name | [] -> "IS")
  | _ :: "journal" :: action :: path :: _ -> journal_cmd action path
  | _ :: "journal" :: _ ->
      Printf.eprintf "usage: ft_dev journal inspect|verify|compact PATH\n";
      exit 2
  | _ :: "chaos-campaign" :: rest ->
      let name = ref "IS" and workers = ref 2 and trials = ref 96 in
      let tenants = ref 1 and tcp = ref 0 in
      let kills = ref [] in
      let rec parse = function
        | [] -> ()
        | "--workers" :: n :: r -> workers := int_of_string n; parse r
        | "--trials" :: n :: r -> trials := int_of_string n; parse r
        | "--tenants" :: n :: r -> tenants := int_of_string n; parse r
        | "--tcp" :: n :: r -> tcp := int_of_string n; parse r
        | "--kills" :: ks :: r ->
            kills := List.map int_of_string (String.split_on_char ',' ks);
            parse r
        | n :: r -> name := n; parse r
      in
      parse rest;
      if !tenants > 1 || !tcp > 0 then
        chaos_multi !name ~workers:!workers ~tcp:!tcp ~tenants:(max 1 !tenants)
          ~kills:!kills ~trials:!trials
      else
        chaos_campaign !name ~workers:!workers ~kills:!kills ~trials:!trials
  | _ :: "seq-parity" :: rest ->
      seq_parity (match rest with [] -> [ "kmeans"; "kmeans@opt" ] | l -> l)
  | _ :: "sites" :: _ -> sites ()
  | _ :: "radd" :: name :: _ ->
      let a = Registry.find name in
      let r = Static_detect.analyze (App.program a) in
      List.iter
        (fun (s : Static_detect.site) ->
          Printf.printf "%s pc %d line %d region %d\n" s.Static_detect.fname
            s.Static_detect.pc s.Static_detect.line s.Static_detect.region)
        r.Static_detect.repeated_adds
  | _ -> sanity ()
