(* Scratch driver kept for interactive exploration during development;
   the real entry points are bin/fliptracker_cli.exe, bench/main.exe
   and the examples.  With no arguments, prints a pipeline sanity line.

   [ft_dev lint-all] runs the static verifier and the vulnerability
   ranking over the whole registry (the ten study programs plus the
   hardened CG variants) AND over the auto-hardened all-passes variant
   of each of the ten programs, and exits nonzero if any program has a
   lint error — the static-analysis counterpart of the sanity line and
   the CI gate on the hardening pipeline's output IR.
   [ft_dev sites] prints per-app static pattern-site counts and
   [ft_dev radd APP] the repeated-addition sites of one app.
   [ft_dev trace-roundtrip [APP]] saves APP's trace (default IS) in
   both encodings, reads both back, and exits nonzero unless each
   round-trip is event-for-event exact. *)

let dedup_apps (apps : App.t list) : App.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (a : App.t) ->
      if Hashtbl.mem seen a.App.name then false
      else begin
        Hashtbl.add seen a.App.name ();
        true
      end)
    apps

let lint_all () =
  let apps = dedup_apps (Registry.all @ Registry.cg_variants) in
  let failed = ref 0 in
  (* registered programs first, then the hardening pipeline's output for
     each of the ten study programs (labelled NAME@all) — the transform
     is applied directly to the compiled IR, no re-bake needed *)
  let programs =
    List.map (fun (a : App.t) -> (a.App.name, App.program a)) apps
    @ List.map
        (fun (a : App.t) ->
          (a.App.name ^ "@all", Harden.transform Passes.all (App.program a)))
        Registry.all
    @ List.map
        (fun (a : App.t) ->
          (a.App.name ^ "@opt", Opt.transform Opt.all (App.program a)))
        Registry.all
  in
  List.iter
    (fun (name, p) ->
      let ds = Verify.verify p in
      let errs = List.length (Verify.errors ds) in
      let warns = List.length (Verify.warnings ds) in
      if errs > 0 then incr failed;
      Printf.printf "%-12s %d errors, %d warnings\n" name errs warns;
      List.iter
        (fun d -> Fmt.pr "    %a@." Verify.pp_diag d)
        (Verify.errors ds);
      let ranking = Vuln.rank p in
      List.iteri
        (fun i s ->
          if i < 3 then
            Printf.printf "    #%d %-12s score %7.3f\n" (i + 1)
              s.Vuln.rname s.Vuln.score)
        ranking)
    programs;
  if !failed > 0 then begin
    Printf.printf "lint-all: %d program(s) with errors\n" !failed;
    exit 1
  end
  else Printf.printf "lint-all: all %d programs clean\n" (List.length programs)

let sanity () =
  let app = Registry.find "IS" in
  let r = App.reference app in
  Printf.printf
    "fliptracker dev: %s runs %d instructions, verified=%b; see bin/fliptracker_cli.exe --help\n"
    app.App.name r.Machine.instructions
    (App.verified r.Machine.output)

let sites () =
  List.iter
    (fun (a : App.t) ->
      let r = Static_detect.analyze (App.program a) in
      Printf.printf "%-8s cond %3d shift %2d trunc %2d store %3d radd %2d\n"
        a.App.name
        (List.length r.Static_detect.conditionals)
        (List.length r.Static_detect.shifts)
        (List.length r.Static_detect.truncations)
        (List.length r.Static_detect.overwrites)
        (List.length r.Static_detect.repeated_adds))
    Registry.all

let trace_roundtrip name =
  let app = Registry.find name in
  let _, trace = App.trace app in
  let n = Trace.length trace in
  let failed = ref false in
  let sizes =
    List.map
      (fun (label, fmt) ->
        let path = Filename.temp_file "ft_rt" ".trace" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Trace_io.save ~format:fmt path trace;
            let size = (Unix.stat path).Unix.st_size in
            let back = Trace_io.load path in
            let ok = ref (Trace.length back = n) in
            if !ok then
              Trace.iteri
                (fun i e -> if compare e (Trace.get back i) <> 0 then ok := false)
                trace;
            Printf.printf "%-8s %-6s %10d bytes  roundtrip %s\n" app.App.name
              label size
              (if !ok then "OK" else "MISMATCH");
            if not !ok then failed := true;
            size))
      [ ("text", Trace_io.Text); ("binary", Trace_io.Binary) ]
  in
  (match sizes with
  | [ text; bin ] when bin > 0 ->
      Printf.printf "%-8s ratio  %10.2fx (%d events)\n" app.App.name
        (float_of_int text /. float_of_int bin)
        n
  | _ -> ());
  if !failed then begin
    print_endline "trace-roundtrip: FAILED";
    exit 1
  end
  else print_endline "trace-roundtrip: OK"

let opt_report name =
  let app = Registry.find name in
  let base = App.program app in
  let prog, reports, map = Opt.optimize Opt.all base in
  Opt.check_identity
    ~passes:(List.map (fun (p : Opt.pass) -> p.Opt.name) Opt.all)
    ~base ~opt:prog;
  Fmt.pr "%a" Opt.pp_reports reports;
  let rb = Machine.run_plain base and ro = Machine.run_plain prog in
  Printf.printf
    "%s: static %d -> %d instructions, dynamic %d -> %d (%.2fx), %d pcs \
     deleted, identity OK\n"
    app.App.name
    (Opt.static_instruction_count base)
    (Opt.static_instruction_count prog)
    rb.Machine.instructions ro.Machine.instructions
    (float_of_int rb.Machine.instructions
    /. float_of_int (max 1 ro.Machine.instructions))
    (Sitemap.deleted map);
  let _, t = Machine.run_traced prog in
  let h = Hashtbl.create 16 in
  Trace.iter
    (fun e ->
      let k =
        match e.Trace.op with
        | Trace.OConst -> "const"
        | Trace.OBin _ -> "bin"
        | Trace.OUn _ -> "un"
        | Trace.OLoad -> "load"
        | Trace.OStore -> "store"
        | Trace.OJmp -> "jmp"
        | Trace.OBr _ -> "br"
        | Trace.OCall -> "call"
        | Trace.ORet -> "ret"
        | Trace.OIntr _ -> "intr"
        | Trace.OMark _ -> "mark"
      in
      Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
    t;
  Hashtbl.iter (fun k v -> Printf.printf "  %-6s %d\n" k v) h

let trial_cost name =
  (* where campaign wall time goes: total instructions interpreted across
     the same 240-trial design the campaign-scale bench runs *)
  let app =
    match String.index_opt name '@' with
    | None -> Registry.find name
    | Some i -> Opt.app_variant (Registry.find (String.sub name 0 i))
  in
  let clean, trace = App.trace app in
  let prog = App.program app in
  let target = Campaign.whole_program_target prog trace in
  let budget = 20 * clean.Machine.instructions in
  let total = ref 0 and hangs = ref 0 and traps = ref 0 in
  for i = 0 to 239 do
    let rng = Rng.derive ~seed:42 ~index:i in
    let fault = Campaign.sample_fault rng target in
    let r = Machine.run prog { Machine.default_config with budget; fault = Some fault } in
    total := !total + r.Machine.instructions;
    match r.Machine.outcome with
    | Machine.Budget_exceeded -> incr hangs
    | Machine.Trapped _ -> incr traps
    | Machine.Finished -> ()
  done;
  Printf.printf
    "%s: clean %d instr; 240 trials: %d total instr (avg %d), %d hangs, %d \
     traps\n"
    app.App.name clean.Machine.instructions !total (!total / 240) !hangs !traps

let profile name =
  (* dynamic instruction counts per pc of the optimized program, hottest
     first — where the remaining interpreter time goes *)
  let app = Registry.find name in
  let prog = Opt.transform Opt.all (App.program app) in
  let _, t = Machine.run_traced prog in
  let counts = Hashtbl.create 64 in
  Trace.iter
    (fun e ->
      let k = (e.Trace.fidx, e.Trace.pc) in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    t;
  let l = Hashtbl.fold (fun k v acc -> (v, k) :: acc) counts [] in
  let l = List.sort (fun a b -> compare b a) l in
  List.iteri
    (fun i (v, (fidx, pc)) ->
      if i < 48 then begin
        let f = prog.Prog.funcs.(fidx) in
        Printf.printf "%8d  %s pc %4d line %4d  %s\n" v f.Prog.fname pc
          f.Prog.lines.(pc)
          (Fmt.str "%a" Instr.pp f.Prog.code.(pc))
      end)
    l

let () =
  match Array.to_list Sys.argv with
  | _ :: "lint-all" :: _ -> lint_all ()
  | _ :: "profile" :: rest ->
      profile (match rest with name :: _ -> name | [] -> "IS")
  | _ :: "opt" :: rest ->
      opt_report (match rest with name :: _ -> name | [] -> "IS")
  | _ :: "trial-cost" :: rest ->
      trial_cost (match rest with name :: _ -> name | [] -> "IS")
  | _ :: "opt-dump" :: rest ->
      let name = match rest with n :: _ -> n | [] -> "IS" in
      let app = Registry.find name in
      let prog = Opt.transform Opt.all (App.program app) in
      Fmt.pr "%a@." Prog.pp prog
  | _ :: "trace-roundtrip" :: rest ->
      trace_roundtrip (match rest with name :: _ -> name | [] -> "IS")
  | _ :: "sites" :: _ -> sites ()
  | _ :: "radd" :: name :: _ ->
      let a = Registry.find name in
      let r = Static_detect.analyze (App.program a) in
      List.iter
        (fun (s : Static_detect.site) ->
          Printf.printf "%s pc %d line %d region %d\n" s.Static_detect.fname
            s.Static_detect.pc s.Static_detect.line s.Static_detect.region)
        r.Static_detect.repeated_adds
  | _ -> sanity ()
