(* The fliptracker command-line tool.

   Subcommands, all operating on the registered benchmark programs:

     list                         the registered programs and their regions
     trace APP                    run fault-free, save/split the trace
     inject APP --seq N --bit B   one fault, full analysis report
     campaign APP [--region R]    fault-injection campaign, success rate
     patterns APP                 mine resilience patterns per region
     rates APP                    the six pattern-rate features
     acl APP [--iter K]           ACL series of one injection, CSV/SVG export
     lint APP                     static IR verifier/linter diagnostics
     static-rank APP              static vulnerability ranking of regions
     harden APP [--passes P]      pattern-injection hardening, paired report
     optimize APP [--passes P]    analysis-gated IR optimization, pass report
     mpi-campaign APP [--drop P]  message-fault campaign over MPI bundles
     recovery-eval APP            fault-model x recovery-policy grid report
     arch-campaign APP            cross-structure (reg/cache/istore) campaigns

   Examples:
     fliptracker_cli list
     fliptracker_cli inject MG --seq 120000 --bit 40
     fliptracker_cli campaign CG --region cg_c --trials 200
     fliptracker_cli acl LULESH --out /tmp/lulesh *)

open Cmdliner

let app_arg =
  let doc =
    "Benchmark program (see `list'), or NAME@SPEC for an auto-hardened \
     variant, e.g. CG@all or mg@dup+fresh."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

(* the one shared lookup: registry names (case-insensitive, with
   near-match suggestions) plus NAME@SPEC auto-hardened variants *)
let find_app name =
  match Fliptracker.resolve_app name with
  | Ok app -> app
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

(* enum-ish converters that answer a typo with the Registry's
   did-you-mean helper instead of a bare "invalid value" *)
let enumish_conv ~what ~candidates ~(of_string : string -> ('a, string) result)
    ~(to_string : 'a -> string) : 'a Arg.conv =
  let parse s =
    match of_string s with
    | Ok v -> Ok v
    | Error msg ->
        let sugg = Registry.suggest ~candidates s in
        Error
          (`Msg
            (Printf.sprintf "%s%s (known %s: %s)" msg
               (match sugg with
               | [] -> ""
               | l ->
                   Printf.sprintf "; did you mean %s?"
                     (String.concat " or " l))
               what
               (String.concat ", " candidates)))
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (to_string v))

let fault_model_conv =
  enumish_conv ~what:"fault models" ~candidates:Fault_model.names
    ~of_string:Fault_model.of_string ~to_string:Fault_model.to_string

let recover_conv =
  enumish_conv ~what:"recovery policies" ~candidates:Campaign.recovery_names
    ~of_string:Campaign.recovery_of_string
    ~to_string:Campaign.recovery_to_string

let backend_conv =
  enumish_conv ~what:"execution backends" ~candidates:Backend.names
    ~of_string:(fun s ->
      match Backend.of_string s with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "unknown execution backend %S" s))
    ~to_string:Backend.to_string

let backend_arg =
  Arg.(value
       & opt backend_conv Backend.default
       & info [ "backend" ] ~docv:"B"
           ~doc:"Trial execution engine: $(b,compiled) (default; the \
                 closure-compiled non-tracing backend, bit-identical \
                 counts, several times faster) or $(b,interp) (the tracing \
                 interpreter).  Configurations the compiled backend cannot \
                 run (e.g. --recover rollback) fall back to the \
                 interpreter automatically.")

let structure_conv =
  enumish_conv ~what:"fault structures" ~candidates:Structure.names
    ~of_string:Structure.of_string ~to_string:Structure.to_string

let structure_arg =
  Arg.(value
       & opt structure_conv Structure.Reg
       & info [ "structure" ] ~docv:"S"
           ~doc:"Microarchitectural fault surface: $(b,reg) (default; the \
                 historical register-file stream, counts unchanged), \
                 $(b,cache-tag) (cache line metadata: tag/valid/dirty), \
                 $(b,cache-data) (cache data words), or $(b,istore) (bit \
                 flips in the binary instruction encoding).")

let geom_conv =
  let parse s =
    match Cache_model.geometry_of_string s with
    | Ok g -> Ok g
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf g -> Fmt.string ppf (Cache_model.geometry_to_string g))

let geom_arg =
  Arg.(value
       & opt geom_conv Cache_model.default_geometry
       & info [ "geom" ] ~docv:"SxWxL"
           ~doc:"Cache geometry for the cache-tag/cache-data surfaces as \
                 SETSxWAYSxLINE_WORDS, e.g. 16x2x4 (the default) or \
                 64x1x8 (direct-mapped).")

let fault_model_arg =
  Arg.(value
       & opt fault_model_conv Fault_model.Single_bit
       & info [ "fault-model" ] ~docv:"MODEL"
           ~doc:"Corruption model per injected fault: $(b,single-bit) \
                 (historical default), $(b,double-adjacent), $(b,burst-K) \
                 (random pattern in a K-bit window, 2 <= K <= 64), or \
                 $(b,stuck-at).")

let recover_arg =
  Arg.(value
       & opt recover_conv Campaign.No_recovery
       & info [ "recover" ] ~docv:"POLICY"
           ~doc:"Recovery policy: $(b,none) (default, historical \
                 behavior) or $(b,rollback:N) (checkpoint/rollback with \
                 an N-restore budget; plain $(b,rollback) uses the \
                 default budget).")

(* --- list -------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (app : App.t) ->
        Printf.printf "%-10s %s\n" app.App.name app.App.description;
        Printf.printf "           regions: %s; %d main-loop iterations\n"
          (String.concat ", " app.App.region_names)
          app.App.main_iterations)
      (Registry.all @ Registry.cg_variants)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the registered benchmark programs.")
    Term.(const run $ const ())

(* --- trace ------------------------------------------------------------- *)

let format_arg =
  Arg.(value
       & opt (enum [ ("text", Trace_io.Text); ("binary", Trace_io.Binary) ])
           Trace_io.Text
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Trace encoding: $(b,text) (debuggable) or $(b,binary) \
                 (compact varint/delta codec).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print per-phase wall times, counters, and histograms at the \
               end (the observability report).")

let trace_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR"
           ~doc:"Directory to write the trace and its per-region split into.")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Stream events to the trace file as the program runs, never \
                 materializing the trace in memory (requires --out; the \
                 region split streams from the file in a second pass).")
  in
  let run name out format stream metrics =
    let app = find_app name in
    let obs = Obs.create () in
    let fmt_name =
      match format with Trace_io.Text -> "text" | Trace_io.Binary -> "binary"
    in
    (match (stream, out) with
    | true, None ->
        Printf.eprintf "trace: --stream requires --out DIR\n";
        exit 2
    | true, Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path = Filename.concat dir (app.App.name ^ ".trace") in
        let prog = App.program app in
        let oc = open_out_bin path in
        let w = Trace_io.writer ~format oc in
        let r =
          Fun.protect
            ~finally:(fun () ->
              Trace_io.flush_writer w;
              close_out oc)
            (fun () ->
              Obs.phase obs "trace/run+encode" (fun () ->
                  Machine.run_sink ~iter_mark:(App.iter_mark app)
                    ~sink:(fun e -> Trace_io.write w e)
                    prog))
        in
        Obs.count obs "trace/events" (Trace_io.writer_events w);
        Obs.count obs "trace/bytes" (Trace_io.writer_bytes w);
        Printf.printf "%s: %d dynamic instructions, %d trace events\n"
          app.App.name r.Machine.instructions (Trace_io.writer_events w);
        Printf.printf "wrote %s (%s, %d bytes, streamed)\n" path fmt_name
          (Trace_io.writer_bytes w);
        let parts =
          Obs.phase obs "trace/split" (fun () ->
              let src = Trace_io.source_of_file path in
              src.Trace_io.run (fun events ->
                  Trace_io.split_seq ~dir ~prefix:app.App.name ~format events))
        in
        Printf.printf "wrote %d region-instance pieces under %s\n"
          (List.length parts) dir
    | false, _ -> (
        let r, t =
          Obs.phase obs "trace/run" (fun () -> App.trace app)
        in
        Obs.count obs "trace/events" (Trace.length t);
        Printf.printf "%s: %d dynamic instructions, %d trace events\n"
          app.App.name r.Machine.instructions (Trace.length t);
        List.iter
          (fun (inst : Region.instance) ->
            if inst.Region.number = 0 then
              Printf.printf "  region %d instance 0: %d events\n"
                inst.Region.rid (Region.size inst))
          (Region.instances t);
        match out with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let path = Filename.concat dir (app.App.name ^ ".trace") in
            Obs.phase obs "trace/save" (fun () ->
                Trace_io.save ~format path t);
            Obs.count obs "trace/bytes" (Unix.stat path).Unix.st_size;
            let parts =
              Obs.phase obs "trace/split" (fun () ->
                  Trace_io.split_by_region_instance ~dir ~prefix:app.App.name
                    ~format t)
            in
            Printf.printf
              "wrote %s (%s, %d bytes) and %d region-instance pieces under \
               %s\n"
              path fmt_name (Unix.stat path).Unix.st_size (List.length parts)
              dir));
    if metrics then print_string (Obs.report obs)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run fault-free and optionally save/split the trace.")
    Term.(const run $ app_arg $ out $ format_arg $ stream $ metrics_arg)

(* --- inject ------------------------------------------------------------ *)

let inject_cmd =
  let seq =
    Arg.(value & opt int 10_000 & info [ "seq" ] ~docv:"N"
           ~doc:"Dynamic instruction to corrupt.")
  in
  let bit =
    Arg.(value & opt int 40 & info [ "bit" ] ~docv:"B" ~doc:"Bit to flip (0-63).")
  in
  let run name seq bit =
    let app = find_app name in
    let report =
      Fliptracker.inject_and_analyze app (Machine.Flip_write { seq; bit })
    in
    Fmt.pr "%a@." Fliptracker.pp_injection_report report
  in
  Cmd.v
    (Cmd.info "inject" ~doc:"Inject one bit flip and print the full analysis.")
    Term.(const run $ app_arg $ seq $ bit)

(* --- campaign ----------------------------------------------------------- *)

let campaign_cmd =
  let region =
    Arg.(value & opt (some string) None & info [ "region" ] ~docv:"R"
           ~doc:"Restrict to one code region (first instance), e.g. cg_c.")
  in
  let kind =
    Arg.(value & opt (enum [ ("internal", `Internal); ("input", `Input) ])
           `Internal
         & info [ "kind" ] ~doc:"Injection target kind for --region.")
  in
  let func =
    Arg.(value & opt (some string) None & info [ "function" ] ~docv:"F"
           ~doc:"Restrict to the dynamic instructions of one function.")
  in
  let memory_during =
    Arg.(value & opt (some string) None & info [ "memory-during" ] ~docv:"F"
           ~doc:"Soft errors in the memory of --vars while function $(docv) \
                 executes (the Use Case 1 scenario).")
  in
  let vars =
    Arg.(value & opt (list string) [] & info [ "vars" ] ~docv:"V1,V2"
           ~doc:"Comma-separated global variables for --memory-during.")
  in
  let trials =
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N"
           ~doc:"Number of injections (default: statistical design, capped).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign RNG seed.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains. Counts are identical for any value.")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH"
           ~doc:"Append each completed trial to this on-disk journal \
                 (csexp, fsync'd in batches).")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume from --journal, skipping already-journaled trials.")
  in
  let watchdog =
    Arg.(value & opt (some float) None & info [ "watchdog" ] ~docv:"S"
           ~doc:"Per-trial wall-clock deadline in seconds (supplements the \
                 instruction budget; a tripped watchdog counts as Crashed).")
  in
  let early_stop =
    Arg.(value & flag & info [ "early-stop" ]
           ~doc:"Stop once the Wilson interval on the success rate is within \
                 the statistical design's margin.")
  in
  let opt_spec =
    Arg.(value & opt (some string) None & info [ "opt" ] ~docv:"SPEC"
           ~doc:"Run the campaign on the optimized program: $(b,all) or a \
                 comma-separated optimizer pass list (see `optimize'). \
                 Equivalent to the NAME@opt app spelling, plus it unlocks \
                 $(b,--site-level reference).")
  in
  let site_level =
    Arg.(value
         & opt (enum [ ("native", Campaign.Native);
                       ("reference", Campaign.Reference) ])
             Campaign.Native
         & info [ "site-level" ] ~docv:"L"
             ~doc:"Where fault sites are sampled: $(b,native) (default) \
                   samples from the trace of the program being injected; \
                   $(b,reference) samples from the unoptimized reference \
                   trace and translates each site through the optimizer's \
                   site map (requires $(b,--opt); refuses if a sampled \
                   site's instruction was deleted).")
  in
  let run name region kind func memory_during vars trials seed jobs journal
      resume watchdog early_stop model recovery metrics opt_spec site_level
      backend structure geom =
    let base_app = find_app name in
    if
      structure <> Structure.Reg
      && (region <> None || func <> None || memory_during <> None
         || site_level = Campaign.Reference)
    then begin
      Printf.eprintf
        "--structure %s is a whole-program surface: it excludes --region, \
         --function, --memory-during and --site-level reference\n"
        (Structure.to_string structure);
      exit 2
    end;
    let opt_passes =
      match opt_spec with
      | None -> None
      | Some spec -> (
          match Opt.parse_spec spec with
          | Ok ps -> Some ps
          | Error msg ->
              Printf.eprintf "campaign: %s\n" msg;
              exit 2)
    in
    let app =
      match opt_passes with
      | Some ps -> Opt.app_variant ~passes:ps base_app
      | None -> base_app
    in
    let obs = Obs.create () in
    let cfg =
      {
        Campaign.default_config with
        seed;
        max_trials = (match trials with Some _ -> trials | None -> Some 500);
        model;
        recovery;
        structure;
      }
    in
    let progress (p : Executor.progress) =
      Printf.eprintf "\rcampaign: %d/%d trials (%.0f%%), %.1fs elapsed, eta %.1fs   "
        p.Executor.completed p.Executor.planned
        (100.0 *. Float.of_int p.Executor.completed
        /. Float.of_int (max 1 p.Executor.planned))
        p.Executor.elapsed_s p.Executor.eta_s;
      if p.Executor.completed >= p.Executor.planned then prerr_newline ();
      flush stderr
    in
    let exec =
      {
        Campaign.default_exec with
        jobs;
        journal;
        resume;
        watchdog_s = watchdog;
        early_stop;
        on_progress = Some progress;
        metrics = (if metrics then Some obs else None);
        backend;
      }
    in
    let run_native () =
      let clean, trace =
        Obs.phase obs "campaign/trace-clean" (fun () -> App.trace app)
      in
      let prog = App.program app in
      let target =
        try
          match (region, func, memory_during) with
          | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
              Printf.eprintf
                "--region, --function and --memory-during are exclusive\n";
              exit 2
          | None, Some fname, None -> Campaign.function_target prog trace fname
          | None, None, Some fname ->
              if vars = [] then begin
                Printf.eprintf "--memory-during needs --vars\n";
                exit 2
              end;
              Campaign.memory_during_function_target prog trace ~fname ~vars
          | None, None, None ->
              (* Structure.Reg reduces to whole_program_target *)
              Campaign.structure_target ~geom structure prog trace
                ~clean_instructions:clean.Machine.instructions
          | Some rname, None, None -> (
              let rid = (Prog.region_by_name prog rname).Prog.rid in
              match Region.find_instance trace ~rid ~number:0 with
              | None ->
                  Printf.eprintf "region %s has no instance\n" rname;
                  exit 2
              | Some inst -> (
                  match kind with
                  | `Internal -> Campaign.internal_target prog trace inst
                  | `Input ->
                      Campaign.input_target prog trace (Access.build trace)
                        inst))
        with Campaign.Unknown_symbol { name; available } ->
          (* structured error: actionable message, no backtrace *)
          Printf.eprintf "unknown symbol %S in --vars\navailable symbols: %s\n"
            name
            (String.concat ", " available);
          exit 2
      in
      Campaign.run_report prog ~verify:(App.verify app)
        ~clean_instructions:clean.Machine.instructions ~cfg ~exec target
    in
    let r =
      match site_level with
      | Campaign.Reference -> (
          (* sites sampled on the unoptimized reference, translated
             through the optimizer's composed site map *)
          let passes =
            match opt_passes with
            | Some ps -> ps
            | None ->
                Printf.eprintf
                  "--site-level reference needs --opt: sites are sampled \
                   on the reference program and translated through the \
                   optimizer's site map\n";
                exit 2
          in
          if region <> None || func <> None || memory_during <> None then begin
            Printf.eprintf
              "--site-level reference supports whole-program campaigns \
               only\n";
            exit 2
          end;
          let o =
            Obs.phase obs "campaign/optimize" (fun () ->
                Opt.optimize_app ~passes base_app)
          in
          match Opt.reference_campaign ~cfg ~exec o with
          | r -> r
          | exception Campaign.Untranslatable_site { seq; total; unmapped } ->
              Printf.eprintf
                "reference site (dynamic seq %d) was deleted by the \
                 pipeline: %d of %d sampled sites have no image in the \
                 optimized program\nuse --site-level native, or only \
                 passes whose site maps are total\n"
                seq unmapped total;
              exit 1)
      | Campaign.Native -> run_native ()
    in
    prerr_newline ();
    let counts = r.Campaign.counts in
    let lo, hi =
      Stats.wilson_interval ~successes:counts.Campaign.success
        ~trials:counts.Campaign.trials ~confidence:0.95
    in
    Fmt.pr "%a@." Campaign.pp_counts counts;
    if r.Campaign.stopped_early then
      Printf.printf
        "stopped early at %d of %d planned trials (Wilson interval within \
         the %.0f%%/%.0f%% design)\n"
        (counts.Campaign.trials + counts.Campaign.infra)
        r.Campaign.planned (100.0 *. cfg.Campaign.confidence)
        (100.0 *. cfg.Campaign.margin);
    if r.Campaign.resumed > 0 then
      Printf.printf "resumed %d journaled trials\n" r.Campaign.resumed;
    Printf.printf "95%% Wilson interval on the success rate: [%.3f, %.3f]\n" lo hi;
    if metrics then print_string (Obs.report obs)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a fault-injection campaign on the resilient executor \
          (parallel workers, journal + resume, watchdog, early stopping).")
    Term.(const run $ app_arg $ region $ kind $ func $ memory_during $ vars
          $ trials $ seed $ jobs $ journal $ resume $ watchdog $ early_stop
          $ fault_model_arg $ recover_arg $ metrics_arg $ opt_spec
          $ site_level $ backend_arg $ structure_arg $ geom_arg)

(* --- patterns ------------------------------------------------------------ *)

let patterns_cmd =
  let injections =
    Arg.(value & opt int 6 & info [ "injections"; "n" ]
           ~doc:"Analyzed injections per region.")
  in
  let run name injections =
    let app = find_app name in
    let effort =
      { Effort.default with Effort.acl_injections = injections }
    in
    List.iter
      (fun (r : Experiments.table1_row) ->
        let lo, hi = r.Experiments.t1_lines in
        Printf.printf "%-8s lines %4d-%-5d %8d instr/instance\n"
          r.Experiments.t1_region lo hi r.Experiments.t1_instr_per_iter;
        List.iter
          (fun (p, n) ->
            if n > 0 then
              Printf.printf "    %-28s %6d instances\n" (Pattern.describe p) n)
          r.Experiments.t1_counts)
      (Experiments.table1 ~effort app)
  in
  Cmd.v
    (Cmd.info "patterns" ~doc:"Mine resilience computation patterns per region.")
    Term.(const run $ app_arg $ injections)

(* --- rates ---------------------------------------------------------------- *)

let rates_cmd =
  let run name =
    let app = find_app name in
    let rates = Fliptracker.pattern_rates app in
    let v = Rates.to_vector rates in
    Array.iteri
      (fun i x -> Printf.printf "%-18s %10.6f\n" Rates.feature_names.(i) x)
      v
  in
  Cmd.v
    (Cmd.info "rates" ~doc:"Print the six pattern-rate features of a program.")
    Term.(const run $ app_arg)

(* --- acl ------------------------------------------------------------------ *)

let acl_cmd =
  let iter =
    Arg.(value & opt int (-3) & info [ "iter" ] ~docv:"K"
           ~doc:"Main-loop iteration to inject into (negative = from the end).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"PREFIX"
           ~doc:"Write PREFIX.csv, PREFIX-events.csv and PREFIX.svg.")
  in
  let run name iter out =
    let app = find_app name in
    let s = Experiments.fig7 ~target_iter:iter app in
    let acl = s.Experiments.as_result in
    Printf.printf "ACL peak %d, %d deaths, %d maskings, %d change points%s\n"
      acl.Acl.peak
      (List.length acl.Acl.deaths)
      (List.length acl.Acl.maskings)
      (Array.length acl.Acl.series)
      (match acl.Acl.divergence with
      | Some i -> Printf.sprintf ", diverged at %d" i
      | None -> "");
    match out with
    | None -> ()
    | Some prefix ->
        Export.write_file (prefix ^ ".csv") (Export.acl_to_csv acl);
        Export.write_file (prefix ^ "-events.csv") (Export.events_to_csv acl);
        Export.write_file (prefix ^ ".svg")
          (Export.series_to_svg
             ~title:(Printf.sprintf "%s: alive corrupted locations" app.App.name)
             acl.Acl.series);
        Printf.printf "wrote %s.csv, %s-events.csv, %s.svg\n" prefix prefix prefix
  in
  Cmd.v
    (Cmd.info "acl" ~doc:"ACL time series of one injection, with CSV/SVG export.")
    Term.(const run $ app_arg $ iter $ out)

(* --- lint ----------------------------------------------------------------- *)

let lint_cmd =
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the diagnostics as CSV.")
  in
  let warn =
    Arg.(value & flag & info [ "warnings"; "w" ]
           ~doc:"Include warnings (default: only the summary mentions them).")
  in
  let run name csv warn =
    let app = find_app name in
    let ds = Verify.verify (App.program app) in
    if csv then
      print_string
        (Verify.to_csv (if warn then ds else Verify.errors ds))
    else begin
      let shown = if warn then ds else Verify.errors ds in
      List.iter (fun d -> Fmt.pr "%a@." Verify.pp_diag d) shown;
      Printf.printf "%s: %d errors, %d warnings\n" app.App.name
        (List.length (Verify.errors ds))
        (List.length (Verify.warnings ds))
    end;
    if not (Verify.ok ds) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static IR verifier (structural, control-flow, dataflow \
          and calling-convention checks); exit 1 on errors.")
    Term.(const run $ app_arg $ csv $ warn)

(* --- static-rank ---------------------------------------------------------- *)

let static_rank_cmd =
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the ranking as CSV.")
  in
  let run name csv =
    let app = find_app name in
    let ranking = Static_detect.static_rank (App.program app) in
    if csv then print_string (Vuln.to_csv ranking)
    else Fmt.pr "@[<v>%a@]@." Vuln.pp_ranking ranking
  in
  Cmd.v
    (Cmd.info "static-rank"
       ~doc:
         "Rank the program's code regions by static vulnerability: mean \
          live registers and memory words per instruction, discounted by \
          the density of protective pattern sites.")
    Term.(const run $ app_arg $ csv)

(* --- harden ---------------------------------------------------------------- *)

let harden_cmd =
  let passes_arg =
    Arg.(value & opt string "all" & info [ "passes" ] ~docv:"SPEC"
           ~doc:"Pass spec: $(b,all), or a comma-separated list of pass \
                 names / short aliases (duplicate-compare/dup, \
                 accumulator-guard/acc, trunc-barrier/trunc, \
                 overwrite-fresh/fresh).")
  in
  let top_k =
    Arg.(value & opt int Pass.default_opts.Pass.top_k
         & info [ "top-k" ] ~docv:"K"
             ~doc:"Regions from the top of the static vulnerability \
                   ranking that duplicate-compare instruments.")
  in
  let report =
    Arg.(value & flag & info [ "report" ]
           ~doc:"Run paired baseline/hardened campaigns (baseline, each \
                 pass alone, all passes) and print the Table-III-style \
                 resilience report.")
  in
  let emit_ir =
    Arg.(value & opt (some string) None & info [ "emit-ir" ] ~docv:"PATH"
           ~doc:"Write the transformed program's IR listing to $(docv) \
                 ($(b,-) for stdout).")
  in
  let trials =
    Arg.(value & opt int 300 & info [ "trials" ] ~docv:"N"
           ~doc:"Campaign trials per variant for --report.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ]
           ~doc:"Campaign RNG seed for --report (shared across variants: \
                 the campaigns are paired).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Emit the --report campaign table as CSV.")
  in
  let run name spec top_k report emit_ir trials seed csv =
    let app = find_app name in
    let passes =
      match Harden.parse_spec spec with
      | Ok ps -> ps
      | Error msg ->
          Printf.eprintf "harden: %s\n" msg;
          exit 2
    in
    let opts = { Pass.top_k } in
    let baseline = App.program app in
    let hardened, reports =
      try Harden.harden ~opts passes baseline
      with Pass.Verify_failed { passes; diags } ->
        Printf.eprintf
          "harden: pipeline [%s] produced broken IR (%d error \
           diagnostic(s)):\n"
          (String.concat "; " passes)
          (List.length diags);
        List.iter (fun d -> Fmt.epr "  %a@." Verify.pp_diag d) diags;
        exit 1
    in
    Printf.printf "%s: %d -> %d static instructions (%s)\n" app.App.name
      (Prog.static_size baseline)
      (Prog.static_size hardened)
      (Harden.spec_names passes);
    List.iter (fun r -> Fmt.pr "@[<v>%a@]@." Pass.pp_report r) reports;
    print_string "post-harden static ranking (guards counted as \
                  protective):\n";
    List.iteri
      (fun i s ->
        if i < 5 then
          Fmt.pr "%2d. %a@." (i + 1) Vuln.pp_score s)
      (Harden.ranking_after hardened reports);
    (match emit_ir with
    | None -> ()
    | Some "-" -> Fmt.pr "%a@." Prog.pp hardened
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let ppf = Format.formatter_of_out_channel oc in
            Fmt.pf ppf "%a@." Prog.pp hardened);
        Printf.printf "wrote IR listing to %s\n" path);
    if report then begin
      let effort =
        {
          Effort.quick with
          Effort.campaign =
            {
              Campaign.default_config with
              seed;
              max_trials = Some trials;
            };
        }
      in
      let r = Harden_eval.evaluate ~effort ~opts ~passes app in
      if csv then print_string (Harden_eval.to_csv r)
      else Fmt.pr "@[<v>%a@]@." Harden_eval.pp_report r
    end
  in
  Cmd.v
    (Cmd.info "harden"
       ~doc:
         "Automatically harden a program with the pattern-injection \
          passes (verified IR out), and optionally measure the \
          resilience delta with paired campaigns.")
    Term.(const run $ app_arg $ passes_arg $ top_k $ report $ emit_ir
          $ trials $ seed $ csv)

(* --- optimize -------------------------------------------------------------- *)

let optimize_cmd =
  let passes_arg =
    Arg.(value & opt string "all" & info [ "passes" ] ~docv:"SPEC"
           ~doc:"Pass spec: $(b,all), or a ','/'+'-separated list of pass \
                 names / short aliases (constfold/fold, simplify/simp, \
                 local-cse/cse, redundant-load-elim/rle, copyprop/copy, \
                 scalar-promote/promote, loop-hoist/hoist, coalesce/coal, \
                 deadcode/dce).")
  in
  let rounds =
    Arg.(value & opt int 4 & info [ "rounds" ] ~docv:"N"
           ~doc:"Iterate the whole pass list up to $(docv) times, stopping \
                 early once a round changes nothing.")
  in
  let emit_ir =
    Arg.(value & opt (some string) None & info [ "emit-ir" ] ~docv:"PATH"
           ~doc:"Write the optimized program's IR listing to $(docv) \
                 ($(b,-) for stdout).")
  in
  let run name spec rounds emit_ir =
    let app = find_app name in
    let passes =
      match Opt.parse_spec spec with
      | Ok ps -> ps
      | Error msg ->
          Printf.eprintf "optimize: %s\n" msg;
          exit 2
    in
    let base = App.program app in
    let prog, reports, map =
      try Opt.optimize ~rounds passes base
      with Pass.Verify_failed { passes; diags } ->
        Printf.eprintf
          "optimize: pipeline [%s] produced broken IR (%d error \
           diagnostic(s)):\n"
          (String.concat "; " passes)
          (List.length diags);
        List.iter (fun d -> Fmt.epr "  %a@." Verify.pp_diag d) diags;
        exit 1
    in
    (try
       Opt.check_identity
         ~passes:(List.map (fun (p : Opt.pass) -> p.Opt.name) passes)
         ~base ~opt:prog
     with Opt.Identity_failed { passes; reason } ->
       Printf.eprintf
         "optimize: pipeline [%s] changed fault-free behavior: %s\n"
         (String.concat "; " passes)
         reason;
       exit 1);
    Fmt.pr "%a" Opt.pp_reports reports;
    let rb = Machine.run_plain base and ro = Machine.run_plain prog in
    Printf.printf
      "%s (%s): static %d -> %d instructions, dynamic %d -> %d (%.2fx \
       fewer), %d pcs deleted, fault-free identity OK\n"
      app.App.name
      (Opt.spec_names passes)
      (Opt.static_instruction_count base)
      (Opt.static_instruction_count prog)
      rb.Machine.instructions ro.Machine.instructions
      (float_of_int rb.Machine.instructions
      /. float_of_int (max 1 ro.Machine.instructions))
      (Sitemap.deleted map);
    match emit_ir with
    | None -> ()
    | Some "-" -> Fmt.pr "%a@." Prog.pp prog
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let ppf = Format.formatter_of_out_channel oc in
            Fmt.pf ppf "%a@." Prog.pp prog);
        Printf.printf "wrote IR listing to %s\n" path
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Optimize a program with the dataflow-driven pass pipeline \
          (every rewrite justified by a static analysis, gated by the IR \
          verifier and a fault-free output-identity check) and print the \
          per-pass change reports.")
    Term.(const run $ app_arg $ passes_arg $ rounds $ emit_ir)

(* --- mpi-campaign ---------------------------------------------------------- *)

let mpi_campaign_cmd =
  let size =
    Arg.(value & opt int 2 & info [ "size" ] ~docv:"N"
           ~doc:"Simulated MPI ranks per bundle.")
  in
  let trials =
    Arg.(value & opt int 8 & info [ "trials" ] ~docv:"N"
           ~doc:"Bundles to run (each is one $(b,--size)-rank execution).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign RNG seed.")
  in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"P"
           ~doc:"Per-message drop probability.")
  in
  let corrupt =
    Arg.(value & opt float 0.0 & info [ "corrupt" ] ~docv:"P"
           ~doc:"Per-message payload bit-corruption probability.")
  in
  let duplicate =
    Arg.(value & opt float 0.0 & info [ "duplicate" ] ~docv:"P"
           ~doc:"Per-message duplicate-delivery probability.")
  in
  let reliable =
    Arg.(value & flag & info [ "reliable" ]
           ~doc:"Use the reliable transport (checksums, receiver-driven \
                 resend, duplicate suppression) instead of the raw one.")
  in
  let recv_timeout =
    Arg.(value & opt float 1.0 & info [ "recv-timeout" ] ~docv:"S"
           ~doc:"Per-receive wall-clock deadline in seconds; a receive \
                 that exceeds it raises a structured Comm_error instead \
                 of hanging the bundle.")
  in
  let require_resend =
    Arg.(value & flag & info [ "require-resend" ]
           ~doc:"Exit 1 unless at least one dropped/corrupted message was \
                 recovered by retransmission (the CI proof that the \
                 resend path actually fired).")
  in
  let max_crashed =
    Arg.(value & opt (some int) None & info [ "max-crashed" ] ~docv:"N"
           ~doc:"Exit 1 if more than $(docv) bundles crash.")
  in
  let run name size trials seed drop corrupt duplicate reliable recv_timeout
      recovery require_resend max_crashed =
    let app = find_app name in
    let prog = Recovery_eval.wrapped_program app in
    let clean = Machine.run prog Machine.default_config in
    (match clean.Machine.outcome with
    | Machine.Finished -> ()
    | _ ->
        Printf.eprintf "mpi-campaign: fault-free run did not finish\n";
        exit 2);
    let budget =
      Campaign.default_config.Campaign.budget_factor
      * clean.Machine.instructions
    in
    let recover = Campaign.machine_recover recovery in
    let counts = ref Campaign.zero_counts in
    let dropped = ref 0 and corrupted = ref 0 and duplicated = ref 0 in
    let resent = ref 0 in
    for i = 0 to trials - 1 do
      let faults =
        {
          Comm.seed = (seed * 8191) + (1009 * i);
          drop_p = drop;
          corrupt_p = corrupt;
          dup_p = duplicate;
        }
      in
      let b =
        Runner.run ~size ~faults ~reliable ~recv_timeout_s:recv_timeout
          ?recover ~budget prog
      in
      let s = b.Runner.comm_stats in
      dropped := !dropped + s.Comm.dropped;
      corrupted := !corrupted + s.Comm.corrupted;
      duplicated := !duplicated + s.Comm.duplicated;
      resent := !resent + s.Comm.resent;
      counts :=
        Campaign.add_outcome !counts
          (Runner.classify ~verify:(App.verify app) b)
    done;
    let c = !counts in
    Printf.printf
      "%s x %d bundles at size %d (%s transport, recover %s):\n"
      app.App.name trials size
      (if reliable then "reliable" else "raw")
      (Campaign.recovery_to_string recovery);
    Fmt.pr "%a@." Campaign.pp_counts c;
    Printf.printf
      "transport: %d dropped, %d corrupted, %d duplicated, %d resent\n"
      !dropped !corrupted !duplicated !resent;
    if require_resend && !resent = 0 then begin
      Printf.eprintf
        "mpi-campaign: --require-resend, but no message was retransmitted\n";
      exit 1
    end;
    match max_crashed with
    | Some n when c.Campaign.crashed > n ->
        Printf.eprintf "mpi-campaign: %d bundles crashed (max allowed %d)\n"
          c.Campaign.crashed n;
        exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "mpi-campaign"
       ~doc:
         "Run a message-fault campaign over simulated MPI bundles: the \
          transport drops/corrupts/duplicates payloads under a derived \
          RNG stream, receives time out instead of hanging, and the \
          reliable transport recovers by retransmission.")
    Term.(const run $ app_arg $ size $ trials $ seed $ drop $ corrupt
          $ duplicate $ reliable $ recv_timeout $ recover_arg
          $ require_resend $ max_crashed)

(* --- recovery-eval --------------------------------------------------------- *)

let recovery_eval_cmd =
  let size =
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"N"
           ~doc:"MPI ranks for the parallel cells.")
  in
  let serial_trials =
    Arg.(value & opt int 120 & info [ "serial-trials" ] ~docv:"N"
           ~doc:"Trials per serial cell.")
  in
  let mpi_trials =
    Arg.(value & opt int 40 & info [ "mpi-trials" ] ~docv:"N"
           ~doc:"Bundles per parallel cell.")
  in
  let msg_trials =
    Arg.(value & opt int 12 & info [ "msg-trials" ] ~docv:"N"
           ~doc:"Bundles per message-fault cell.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign RNG seed.")
  in
  let models =
    Arg.(value
         & opt (list fault_model_conv) Recovery_eval.default_models
         & info [ "models" ] ~docv:"M1,M2"
             ~doc:"Comma-separated fault models to compare.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the report as CSV.")
  in
  let run name size serial_trials mpi_trials msg_trials seed models csv =
    let app = find_app name in
    let r =
      Recovery_eval.evaluate ~seed ~models ~size ~serial_trials ~mpi_trials
        ~msg_trials app
    in
    if csv then print_string (Recovery_eval.to_csv r)
    else Fmt.pr "@[<v>%a@]@." Recovery_eval.pp_report r
  in
  Cmd.v
    (Cmd.info "recovery-eval"
       ~doc:
         "Paired recovery campaigns: every fault model x recovery policy, \
          serial vs. MPI bundles of the same (ring-exchange wrapped) \
          program, plus raw-vs-reliable transport under message faults.")
    Term.(const run $ app_arg $ size $ serial_trials $ mpi_trials
          $ msg_trials $ seed $ models $ csv)

(* --- arch-campaign --------------------------------------------------------- *)

let arch_campaign_cmd =
  let trials =
    Arg.(value & opt int 150 & info [ "trials" ] ~docv:"N"
           ~doc:"Injections per structure.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign RNG seed.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains. Counts are identical for any value.")
  in
  let structures =
    Arg.(value
         & opt (list structure_conv) Structure.all
         & info [ "structures" ] ~docv:"S1,S2"
             ~doc:"Comma-separated fault surfaces to compare (default: all \
                   of reg, cache-tag, cache-data, istore).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the report as CSV.")
  in
  let run name trials seed jobs structures geom backend csv =
    let app = find_app name in
    let r =
      Arch_eval.evaluate ~seed ~trials ~structures ~geom ~backend ~jobs app
    in
    if csv then print_string (Arch_eval.to_csv r)
    else Fmt.pr "@[<v>%a@]@." Arch_eval.pp_report r
  in
  Cmd.v
    (Cmd.info "arch-campaign"
       ~doc:
         "Cross-structure fault campaigns: inject the same program through \
          every microarchitectural surface (register file, cache metadata, \
          cache data, instruction store) under one seed and compare the \
          per-structure SDC/crash/recovery profiles.")
    Term.(const run $ app_arg $ trials $ seed $ jobs $ structures $ geom_arg
          $ backend_arg $ csv)

(* --- the campaign service (serve / submit / status / shutdown) ---------- *)

let socket_arg =
  Arg.(value & opt string "/tmp/fliptracker.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket of the campaign server.")

let serve_cmd =
  let workers =
    Arg.(value & opt int Server.default_config.Server.workers
         & info [ "workers" ] ~docv:"N" ~doc:"Forked worker processes.")
  in
  let batch =
    Arg.(value & opt int Server.default_config.Server.batch
         & info [ "batch" ] ~docv:"N" ~doc:"Trials per lease.")
  in
  let shards =
    Arg.(value & opt int Server.default_config.Server.shards
         & info [ "shards" ] ~docv:"N" ~doc:"Journal shards per campaign.")
  in
  let journal_dir =
    Arg.(value & opt (some string) None & info [ "journal-dir" ] ~docv:"DIR"
           ~doc:"Root directory for per-campaign sharded journals; an \
                 interrupted campaign resubmitted later resumes from here.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Content-addressed cache of baked programs and golden runs \
                 (campaigns warm-start across server restarts).")
  in
  let heartbeat =
    Arg.(value & opt float Server.default_config.Server.heartbeat_s
         & info [ "heartbeat" ] ~docv:"S"
             ~doc:"Worker lease deadline: a leased worker silent for $(docv) \
                   seconds is SIGKILLed and its batch re-assigned.")
  in
  let max_lease_attempts =
    Arg.(value & opt int Server.default_config.Server.max_lease_attempts
         & info [ "max-lease-attempts" ] ~docv:"N"
             ~doc:"Lease failures tolerated per batch before the campaign \
                   is poisoned.")
  in
  let max_active =
    Arg.(value & opt int Server.default_config.Server.max_active
         & info [ "max-active" ] ~docv:"N"
             ~doc:"Campaigns scheduled concurrently; further submissions \
                   wait in the admission queue.")
  in
  let worker_bind =
    Arg.(value & opt (some string) None & info [ "worker-bind" ]
           ~docv:"HOST:PORT"
           ~doc:"Additionally listen here for remote TCP workers \
                 ($(b,ft worker --connect)); port 0 picks an ephemeral \
                 port.")
  in
  let worker_port_file =
    Arg.(value & opt (some string) None & info [ "worker-port-file" ]
           ~docv:"PATH"
           ~doc:"Write the bound worker port here (useful with port 0).")
  in
  let run socket workers batch shards journal_dir cache_dir heartbeat
      max_lease_attempts max_active worker_bind worker_port_file metrics =
    let obs = Obs.create () in
    let cfg =
      {
        Server.default_config with
        Server.workers;
        batch;
        shards;
        journal_dir;
        heartbeat_s = heartbeat;
        max_lease_attempts;
        max_active;
        metrics = (if metrics then Some obs else None);
      }
    in
    Printf.eprintf "campaign server listening on %s (%d workers%s)\n%!" socket
      workers
      (match worker_bind with
      | Some b -> ", remote workers on " ^ b
      | None -> "");
    Server.serve ~cfg ?cache_dir ?worker_bind ?worker_port_file ~socket ();
    if metrics then print_string (Obs.report obs)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign server: a long-lived multi-tenant process that \
          queues campaign submissions over a Unix socket and interleaves \
          their trial batches across one shared pool of forked and remote \
          TCP workers under heartbeat-guarded leases, with per-campaign \
          sharded journals, fault isolation, and deterministic \
          worker-failure recovery.")
    Term.(const run $ socket_arg $ workers $ batch $ shards $ journal_dir
          $ cache_dir $ heartbeat $ max_lease_attempts $ max_active
          $ worker_bind $ worker_port_file $ metrics_arg)

let worker_cmd =
  let connect =
    Arg.(required & opt (some string) None & info [ "connect" ]
           ~docv:"HOST:PORT"
           ~doc:"Campaign server's worker port to attach to.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Content-addressed plan cache (campaigns rebuild warm).")
  in
  let idle_timeout =
    Arg.(value & opt float 600.0 & info [ "idle-timeout" ] ~docv:"S"
           ~doc:"Exit after $(docv) seconds without a command from the \
                 server (a worker must never outlive its server).")
  in
  let run addr cache_dir idle_timeout =
    Printf.eprintf "worker %d attaching to %s\n%!" (Unix.getpid ()) addr;
    match
      Worker.run_remote ~recv_timeout_s:idle_timeout ?cache_dir ~addr ()
    with
    | Ok () -> Printf.eprintf "worker: server closed the session\n%!"
    | Error e ->
        Printf.eprintf "worker: %s\n" e;
        exit 1
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Attach to a campaign server over TCP as a remote worker and \
          serve leases for any campaign it hosts; trial records stream \
          back under the same checksummed, resend-capable framing forked \
          workers use, so a vanished remote costs at most one in-flight \
          trial.")
    Term.(const run $ connect $ cache_dir $ idle_timeout)

let submit_cmd =
  let trials =
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N"
           ~doc:"Number of injections (default: statistical design, capped).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign RNG seed.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress stream.")
  in
  let resume =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"ID"
           ~doc:"Re-attach to a live campaign or resume an interrupted \
                 one's journal under this campaign id.")
  in
  let run name socket trials seed model recovery structure quiet resume =
    let spec =
      {
        Campaign.sp_app = name;
        sp_seed = seed;
        sp_trials = (match trials with Some _ -> trials | None -> Some 500);
        sp_model = model;
        sp_recovery = recovery;
        sp_structure = structure;
      }
    in
    let on_progress ~completed ~planned ~stolen =
      if not quiet then begin
        Printf.eprintf "\rsubmit: %d/%d trials (%d leases stolen)   "
          completed planned stolen;
        flush stderr
      end
    in
    let on_accepted id =
      if not quiet then Printf.eprintf "submit: accepted as %s\n%!" id
    in
    match
      Client.submit ~on_progress ~on_accepted ?resume_id:resume ~socket spec
    with
    | Ok (id, counts) ->
        if not quiet then prerr_newline ();
        Printf.printf "campaign: %s\n" id;
        Fmt.pr "%a@." Campaign.pp_counts counts
    | Error e ->
        if not quiet then prerr_newline ();
        Printf.eprintf "submit: %s\n" (Client.error_message e);
        exit 1
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a whole-program campaign to a running campaign server and \
          stream its progress; counts are byte-identical to running the \
          same campaign locally with --jobs 1.")
    Term.(const run $ app_arg $ socket_arg $ trials $ seed $ fault_model_arg
          $ recover_arg $ structure_arg $ quiet $ resume)

let status_cmd =
  let run socket =
    match Client.status ~socket () with
    | Ok s ->
        Printf.printf
          "state: %s\ncompleted: %d/%d\ncampaigns finished: %d\nqueued: %d  \
           active: %d  workers: %d\n"
          s.Proto.st_state s.Proto.st_completed s.Proto.st_planned
          s.Proto.st_campaigns s.Proto.st_queued s.Proto.st_active
          s.Proto.st_workers;
        List.iter
          (fun t ->
            Printf.printf "  %-18s %-10s %-9s %d/%d  leases=%d steals=%d\n"
              t.Proto.tn_id t.Proto.tn_app t.Proto.tn_state t.Proto.tn_completed
              t.Proto.tn_planned t.Proto.tn_leases t.Proto.tn_steals)
          s.Proto.st_tenants
    | Error e ->
        Printf.eprintf "status: %s\n" (Client.error_message e);
        exit 1
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Probe a running campaign server: global state plus one row \
             per campaign (queued, active, done, or poisoned).")
    Term.(const run $ socket_arg)

let id_arg =
  Cmdliner.Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ID" ~doc:"Campaign id (as printed by submit/status).")

let fetch_cmd =
  let run socket id =
    match Client.fetch ~socket ~id () with
    | Ok (Client.Finished counts) -> Fmt.pr "%a@." Campaign.pp_counts counts
    | Ok (Client.Running { completed; planned; stolen }) ->
        Printf.printf "running: %d/%d trials (%d leases stolen)\n" completed
          planned stolen
    | Ok (Client.Queued { position }) ->
        Printf.printf "queued: position %d\n" position
    | Error e ->
        Printf.eprintf "fetch: %s\n" (Client.error_message e);
        exit 1
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:
         "Retrieve a campaign's state by id: final counts for a finished \
          campaign (persisted — works long after the submitting connection \
          died), live progress for a running one, queue position for a \
          waiting one.")
    Term.(const run $ socket_arg $ id_arg)

let watch_cmd =
  let run socket id =
    let on_progress ~completed ~planned ~stolen =
      Printf.eprintf "\rwatch: %d/%d trials (%d leases stolen)   " completed
        planned stolen;
      flush stderr
    in
    match Client.watch ~on_progress ~socket ~id () with
    | Ok counts ->
        prerr_newline ();
        Fmt.pr "%a@." Campaign.pp_counts counts
    | Error e ->
        prerr_newline ();
        Printf.eprintf "watch: %s\n" (Client.error_message e);
        exit 1
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Attach to a campaign by id and stream its progress until the \
          verdict; a dropped connection re-attaches instead of losing the \
          campaign.")
    Term.(const run $ socket_arg $ id_arg)

let shutdown_cmd =
  let run socket =
    match Client.shutdown ~socket () with
    | Ok () -> print_endline "server shut down"
    | Error e ->
        Printf.eprintf "shutdown: %s\n" (Client.error_message e);
        exit 1
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Ask a running campaign server to exit; in-flight campaigns' \
             journals are synced so resubmitting with --resume continues \
             them.")
    Term.(const run $ socket_arg)

let () =
  let doc = "fine-grained error-propagation and resilience analysis" in
  let info = Cmd.info "fliptracker" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; trace_cmd; inject_cmd; campaign_cmd; patterns_cmd;
            rates_cmd; acl_cmd; lint_cmd; static_rank_cmd; harden_cmd;
            optimize_cmd; mpi_campaign_cmd; recovery_eval_cmd;
            arch_campaign_cmd; serve_cmd; worker_cmd; submit_cmd; status_cmd;
            fetch_cmd; watch_cmd; shutdown_cmd;
          ]))
